//! The region of interest `R` in the preference domain.
//!
//! The paper assumes `R` is an axis-parallel hyper-rectangle (its techniques
//! extend to convex polytopes; general cells of the arrangement are handled by
//! [`crate::cell::Cell`]). `R` is specified as per-dimension weight ranges,
//! e.g. `[0.1, 0.5] × [0.2, 0.4]` in Fig. 2(b).

use crate::weights::WeightVector;
use crate::{GeomError, EPS};
use serde::{Deserialize, Serialize};

/// Axis-parallel region of interest in the (d−1)-dimensional preference
/// domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefRegion {
    lows: Vec<f64>,
    highs: Vec<f64>,
}

impl PrefRegion {
    /// Creates a region from per-dimension `(low, high)` weight ranges.
    ///
    /// Validation enforces `0 ≤ low ≤ high ≤ 1` per dimension and that the
    /// sum of the lower bounds stays below 1, so that every point of the
    /// region is a valid reduced weight vector.
    pub fn from_ranges(ranges: &[(f64, f64)]) -> Result<Self, GeomError> {
        let mut lows = Vec::with_capacity(ranges.len());
        let mut highs = Vec::with_capacity(ranges.len());
        for &(lo, hi) in ranges {
            if !(lo.is_finite() && hi.is_finite()) || lo < -EPS || hi > 1.0 + EPS || lo > hi + EPS {
                return Err(GeomError::InvalidPreference(format!(
                    "invalid weight range [{lo}, {hi}]"
                )));
            }
            lows.push(lo);
            highs.push(hi);
        }
        let low_sum: f64 = lows.iter().sum();
        if low_sum > 1.0 + EPS {
            return Err(GeomError::InvalidPreference(format!(
                "lower bounds sum to {low_sum} > 1; no valid weight vector exists in the region"
            )));
        }
        Ok(PrefRegion { lows, highs })
    }

    /// A region built from a centre weight vector ± `sigma` (as a fraction of
    /// the axis length), clamped to `[0, 1]`. This mirrors the `σ` parameter
    /// of the paper's experiments (percentage of axis length, Table III).
    pub fn around(center: &WeightVector, sigma: f64) -> Result<Self, GeomError> {
        let half = sigma / 2.0;
        let ranges: Vec<(f64, f64)> = center
            .reduced()
            .iter()
            .map(|&c| ((c - half).max(0.0), (c + half).min(1.0)))
            .collect();
        Self::from_ranges(&ranges)
    }

    /// Number of reduced dimensions (d − 1).
    pub fn dim(&self) -> usize {
        self.lows.len()
    }

    /// Per-dimension lower bounds.
    pub fn lows(&self) -> &[f64] {
        &self.lows
    }

    /// Per-dimension upper bounds.
    pub fn highs(&self) -> &[f64] {
        &self.highs
    }

    /// Whether a reduced weight point lies inside the region (with tolerance).
    pub fn contains(&self, reduced_w: &[f64]) -> bool {
        reduced_w.len() == self.dim()
            && reduced_w
                .iter()
                .zip(self.lows.iter().zip(self.highs.iter()))
                .all(|(&w, (&lo, &hi))| w >= lo - EPS && w <= hi + EPS)
    }

    /// The `2^(d−1)` corner points of the region.
    ///
    /// r-dominance against the whole region only needs the affine form to be
    /// checked at these corners (Section IV-A).
    pub fn corners(&self) -> Vec<Vec<f64>> {
        let dim = self.dim();
        if dim == 0 {
            return vec![Vec::new()];
        }
        let mut corners = Vec::with_capacity(1 << dim);
        for mask in 0..(1u64 << dim) {
            let corner: Vec<f64> = (0..dim)
                .map(|i| {
                    if mask & (1 << i) != 0 {
                        self.highs[i]
                    } else {
                        self.lows[i]
                    }
                })
                .collect();
            corners.push(corner);
        }
        corners
    }

    /// The pivot vector of the region: the per-dimension mean of its corners,
    /// guaranteed to lie inside `R` by convexity (Section IV-B uses it as the
    /// BBS sorting key).
    pub fn pivot(&self) -> WeightVector {
        let reduced = self
            .lows
            .iter()
            .zip(self.highs.iter())
            .map(|(&lo, &hi)| 0.5 * (lo + hi))
            .collect();
        WeightVector::new_unchecked(reduced)
    }

    /// Side length per dimension.
    pub fn side_lengths(&self) -> Vec<f64> {
        self.lows
            .iter()
            .zip(self.highs.iter())
            .map(|(&lo, &hi)| hi - lo)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_region() {
        // Fig. 2(b): R = [0.1, 0.5] x [0.2, 0.4]
        let r = PrefRegion::from_ranges(&[(0.1, 0.5), (0.2, 0.4)]).unwrap();
        assert_eq!(r.dim(), 2);
        assert!(r.contains(&[0.2, 0.3]));
        assert!(!r.contains(&[0.6, 0.3]));
        assert!(!r.contains(&[0.2, 0.5]));
        let corners = r.corners();
        assert_eq!(corners.len(), 4);
        assert!(corners.contains(&vec![0.1, 0.2]));
        assert!(corners.contains(&vec![0.5, 0.4]));
        let pivot = r.pivot();
        assert!((pivot.reduced()[0] - 0.3).abs() < 1e-12);
        assert!((pivot.reduced()[1] - 0.3).abs() < 1e-12);
        let sides = r.side_lengths();
        assert!((sides[0] - 0.4).abs() < 1e-12 && (sides[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_regions() {
        assert!(PrefRegion::from_ranges(&[(0.5, 0.2)]).is_err());
        assert!(PrefRegion::from_ranges(&[(-0.1, 0.2)]).is_err());
        assert!(PrefRegion::from_ranges(&[(0.1, 1.4)]).is_err());
        // lower bounds already exceed the simplex
        assert!(PrefRegion::from_ranges(&[(0.7, 0.8), (0.6, 0.9)]).is_err());
    }

    #[test]
    fn around_center() {
        let c = WeightVector::new(vec![0.3, 0.3]).unwrap();
        let r = PrefRegion::around(&c, 0.1).unwrap();
        assert!(r.contains(&[0.3, 0.3]));
        assert!(r.contains(&[0.34, 0.27]));
        assert!(!r.contains(&[0.4, 0.3]));
        // clamping near the boundary
        let c2 = WeightVector::new(vec![0.02]).unwrap();
        let r2 = PrefRegion::around(&c2, 0.1).unwrap();
        assert!((r2.lows()[0] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn zero_dimensional_region() {
        // d = 1 attribute: the preference domain is a single point.
        let r = PrefRegion::from_ranges(&[]).unwrap();
        assert_eq!(r.dim(), 0);
        assert_eq!(r.corners(), vec![Vec::<f64>::new()]);
        assert!(r.contains(&[]));
        assert_eq!(r.pivot().reduced_dim(), 0);
    }

    #[test]
    fn corners_match_dimension() {
        let r = PrefRegion::from_ranges(&[(0.1, 0.2), (0.2, 0.3), (0.05, 0.15)]).unwrap();
        assert_eq!(r.corners().len(), 8);
        for c in r.corners() {
            assert!(r.contains(&c));
        }
    }
}

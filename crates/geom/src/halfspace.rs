//! Half-spaces in the preference domain.
//!
//! For two attribute vectors `X(u)` and `X(v)`, the score difference
//! `S(u) − S(v)` is affine in the reduced weight vector `w`:
//!
//! ```text
//! S(u) − S(v) = (x_d^u − x_d^v) + Σ_{i<d} w_i ((x_i^u − x_d^u) − (x_i^v − x_d^v))
//! ```
//!
//! The constraint `S(u) ≥ S(v)` therefore defines the half-space
//! `HS: f(w) ≥ 0` with `f(w) = offset + coeffs · w`. These half-spaces are the
//! atoms of the arrangement that Algorithm 1 builds inside the region `R`.

use crate::weights::WeightVector;
use crate::EPS;
use serde::{Deserialize, Serialize};

/// The affine form `f(w) = offset + coeffs · w`; the half-space is `f(w) ≥ 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HalfSpace {
    /// Linear coefficients over the reduced weights.
    pub coeffs: Vec<f64>,
    /// Constant term.
    pub offset: f64,
}

impl HalfSpace {
    /// Creates a half-space directly from the affine form.
    pub fn new(coeffs: Vec<f64>, offset: f64) -> Self {
        HalfSpace { coeffs, offset }
    }

    /// The half-space `S(favored) ≥ S(other)` for two `d`-dimensional
    /// attribute vectors.
    pub fn score_at_least(favored: &[f64], other: &[f64]) -> Self {
        debug_assert_eq!(favored.len(), other.len());
        let d = favored.len();
        let xd_f = favored[d - 1];
        let xd_o = other[d - 1];
        let coeffs = (0..d - 1)
            .map(|i| (favored[i] - xd_f) - (other[i] - xd_o))
            .collect();
        HalfSpace {
            coeffs,
            offset: xd_f - xd_o,
        }
    }

    /// In-place variant of [`HalfSpace::score_at_least`]: refills this
    /// half-space reusing its coefficient buffer, so pooled half-spaces can be
    /// recycled across queries without reallocating.
    pub fn assign_score_at_least(&mut self, favored: &[f64], other: &[f64]) {
        debug_assert_eq!(favored.len(), other.len());
        let d = favored.len();
        let xd_f = favored[d - 1];
        let xd_o = other[d - 1];
        self.coeffs.clear();
        self.coeffs
            .extend((0..d - 1).map(|i| (favored[i] - xd_f) - (other[i] - xd_o)));
        self.offset = xd_f - xd_o;
    }

    /// In-place copy from another half-space, reusing the coefficient buffer.
    pub fn assign_from(&mut self, src: &HalfSpace) {
        self.coeffs.clear();
        self.coeffs.extend_from_slice(&src.coeffs);
        self.offset = src.offset;
    }

    /// Number of reduced dimensions this half-space lives in.
    pub fn dim(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates the affine form at a reduced weight point.
    pub fn eval(&self, reduced_w: &[f64]) -> f64 {
        debug_assert_eq!(reduced_w.len(), self.coeffs.len());
        self.offset
            + self
                .coeffs
                .iter()
                .zip(reduced_w.iter())
                .map(|(c, w)| c * w)
                .sum::<f64>()
    }

    /// Evaluates the affine form at a [`WeightVector`].
    pub fn eval_weight(&self, w: &WeightVector) -> f64 {
        self.eval(w.reduced())
    }

    /// Whether the point satisfies the half-space (with tolerance).
    pub fn contains(&self, reduced_w: &[f64]) -> bool {
        self.eval(reduced_w) >= -EPS
    }

    /// The complementary half-space `f(w) ≤ 0`, i.e. `−f(w) ≥ 0`.
    pub fn negated(&self) -> HalfSpace {
        HalfSpace {
            coeffs: self.coeffs.iter().map(|c| -c).collect(),
            offset: -self.offset,
        }
    }

    /// Whether the affine form is (numerically) identically zero, which
    /// happens when the two attribute vectors coincide.
    pub fn is_degenerate(&self) -> bool {
        self.offset.abs() < EPS && self.coeffs.iter().all(|c| c.abs() < EPS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halfspace_matches_score_difference() {
        let u = [8.8, 3.6, 2.2]; // v1 in Fig. 2(a)
        let v = [2.1, 5.0, 5.1]; // v7
        let hs = HalfSpace::score_at_least(&u, &v);
        assert_eq!(hs.dim(), 2);
        for w in [[0.2, 0.3], [0.5, 0.1], [0.05, 0.9], [0.0, 0.0]] {
            let wv = WeightVector::new_unchecked(w.to_vec());
            let diff = wv.score(&u) - wv.score(&v);
            assert!((hs.eval(&w) - diff).abs() < 1e-12);
        }
    }

    #[test]
    fn contains_and_negation() {
        let u = [5.0, 1.0];
        let v = [1.0, 5.0];
        // S(u) - S(v) = (1 - 5) + w1 ((5-1) - (1-5)) = -4 + 8 w1
        let hs = HalfSpace::score_at_least(&u, &v);
        assert!(hs.contains(&[0.6]));
        assert!(!hs.contains(&[0.4]));
        let neg = hs.negated();
        assert!(neg.contains(&[0.4]));
        assert!(!neg.contains(&[0.6]));
        // boundary point satisfies both (closed half-spaces)
        assert!(hs.contains(&[0.5]));
        assert!(neg.contains(&[0.5]));
    }

    #[test]
    fn degenerate_halfspace() {
        let u = [3.0, 4.0, 5.0];
        let hs = HalfSpace::score_at_least(&u, &u);
        assert!(hs.is_degenerate());
        let hs2 = HalfSpace::score_at_least(&[1.0, 2.0], &[2.0, 1.0]);
        assert!(!hs2.is_degenerate());
    }

    #[test]
    fn eval_weight_consistency() {
        let hs = HalfSpace::new(vec![2.0, -1.0], 0.5);
        let w = WeightVector::new(vec![0.25, 0.25]).unwrap();
        assert!((hs.eval_weight(&w) - (0.5 + 0.5 - 0.25)).abs() < 1e-12);
    }
}

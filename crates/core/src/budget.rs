//! Query budgets: deadlines, work limits, and cooperative cancellation.
//!
//! A [`QueryBudget`] is the *declaration* a caller attaches to a query —
//! how long it may run, how much work it may do, and a flag another thread
//! can flip to stop it. Arming the budget produces a
//! [`BudgetTicker`] (from the road crate, where the hot loops live) that
//! the search stages charge as they go. Exhaustion degrades gracefully:
//! [`QuerySession::execute_with_budget`](crate::session::QuerySession::execute_with_budget)
//! returns [`QueryOutcome::Partial`](crate::result::QueryOutcome::Partial)
//! with the best-so-far communities instead of an error.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use rsn_road::budget::{BudgetTicker, ExhaustionCause, CHECK_INTERVAL};

/// Resource limits for one query: an optional deadline, an optional work
/// limit, and an optional cancellation flag. All three compose; the first
/// one to trip stops the query.
///
/// A default-constructed budget is unlimited — queries run exactly as they
/// would without one — so a serving layer can thread budgets through
/// unconditionally and only pay for the limits it sets.
///
/// ```
/// use rsn_core::QueryBudget;
/// use std::sync::atomic::{AtomicBool, Ordering};
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let cancel = Arc::new(AtomicBool::new(false));
/// let budget = QueryBudget::new()
///     .with_deadline(Duration::from_millis(50))
///     .with_work_limit(1_000_000)
///     .with_cancel_flag(cancel.clone());
/// assert!(!budget.is_unlimited());
/// // Another thread may flip the flag at any point:
/// cancel.store(true, Ordering::Relaxed);
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryBudget {
    /// Wall-clock allowance, measured from the moment execution starts.
    pub deadline: Option<Duration>,
    /// Maximum abstract work units (heap pops, walked index cells,
    /// arrangement tasks, verified candidates) the query may spend.
    pub work_limit: Option<u64>,
    /// Cooperative cancellation flag; set it (any ordering) to stop the
    /// query at its next budget check.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl QueryBudget {
    /// An unlimited budget.
    pub fn new() -> Self {
        QueryBudget::default()
    }

    /// An explicitly unlimited budget (alias of [`new`](Self::new)).
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// Sets the wall-clock allowance, measured from execution start.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the work limit in abstract units.
    pub fn with_work_limit(mut self, limit: u64) -> Self {
        self.work_limit = Some(limit);
        self
    }

    /// Attaches a cancellation flag.
    pub fn with_cancel_flag(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Whether no limit of any kind is set. Unlimited budgets route to the
    /// unbudgeted execution path: zero polling overhead and a guaranteed
    /// [`Complete`](crate::result::QueryOutcome::Complete) outcome.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.work_limit.is_none() && self.cancel.is_none()
    }

    /// Arms the budget into a ticker, resolving the relative deadline
    /// against the current instant. A deadline too far in the future to
    /// represent is treated as no deadline.
    pub fn arm(&self) -> BudgetTicker {
        let deadline = self.deadline.and_then(|d| Instant::now().checked_add(d));
        BudgetTicker::new(deadline, self.work_limit, self.cancel.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_arms_an_unexhaustible_ticker() {
        let budget = QueryBudget::new();
        assert!(budget.is_unlimited());
        let mut ticker = budget.arm();
        for _ in 0..10_000 {
            assert!(ticker.charge(100));
        }
    }

    #[test]
    fn builders_compose_and_mark_the_budget_limited() {
        let flag = Arc::new(AtomicBool::new(false));
        let budget = QueryBudget::new()
            .with_deadline(Duration::from_secs(3600))
            .with_work_limit(10)
            .with_cancel_flag(flag);
        assert!(!budget.is_unlimited());
        let mut ticker = budget.arm();
        assert!(ticker.charge(10));
        assert!(!ticker.charge(1));
        assert_eq!(ticker.cause(), Some(ExhaustionCause::WorkLimit));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let mut ticker = QueryBudget::new()
            .with_deadline(Duration::from_secs(0))
            .arm();
        assert!(!ticker.charge(1));
        assert_eq!(ticker.cause(), Some(ExhaustionCause::Deadline));
    }
}

//! Computation of the maximal (k,t)-core (Definition 7, Lemmas 1–3).
//!
//! The MAC search never needs to look outside the maximal (k,t)-core: Lemma 1
//! removes every user whose query distance exceeds `t` with a road-network
//! range query, Lemma 2 restricts to the maximal connected k-core containing
//! `Q`, and the coreness upper bound of Section III provides a constant-time
//! infeasibility check before the core decomposition runs.

use crate::error::MacError;
use crate::network::RoadSocialNetwork;
use crate::query::MacQuery;
use rsn_graph::core_decomp::{coreness_upper_bound, maximal_connected_k_core_containing};
use rsn_graph::graph::VertexId;
use rsn_graph::subgraph::SubgraphView;
use rsn_road::budget::BudgetTicker;
use rsn_road::gtree::LeafTargets;
use rsn_road::network::Location;
use rsn_road::rangefilter::{FilterScratch, RangeFilterChoice};

/// Reusable buffers for repeated (k,t)-core extractions against one network.
///
/// Everything network-sized that the extraction used to allocate per query
/// lives here: the query-location list, the Lemma-1 membership mask, the
/// filter's own scratch ([`FilterScratch`]), and the id-translation arrays of
/// the induced-subgraph step. A [`QuerySession`](crate::session::QuerySession)
/// owns one and threads it through every query, so the steady state performs
/// none of these allocations.
#[derive(Debug, Default)]
pub struct KtScratch {
    /// Locations of the query users.
    pub(crate) q_locations: Vec<Location>,
    /// Lemma-1 membership mask over all users.
    pub(crate) within: Vec<bool>,
    /// Social-id → induced-id translation (u32::MAX = not kept).
    pub(crate) old_to_new: Vec<u32>,
    /// Users surviving the Lemma-1 filter, ascending.
    pub(crate) kept: Vec<VertexId>,
    /// Range-filter working buffers (Dijkstra field, walk matrices, rows).
    pub(crate) filter: FilterScratch,
}

impl KtScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        KtScratch::default()
    }
}

/// The maximal (k,t)-core of a query, i.e. `H^t_k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KtCore {
    /// Member users (social ids), sorted ascending.
    pub vertices: Vec<VertexId>,
}

impl KtCore {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the core is empty (no (k,t)-core exists).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// Computes the maximal (k,t)-core for a query, or `None` when it does not
/// exist.
///
/// One-shot convenience: allocates a fresh [`KtScratch`] and uses the query's
/// own [`filter`](MacQuery::filter) choice (analytic `Auto`). Serving loops
/// go through [`maximal_kt_core_with`] with session-held scratch and an
/// engine-resolved strategy.
pub fn maximal_kt_core(
    rsn: &RoadSocialNetwork,
    query: &MacQuery,
) -> Result<Option<KtCore>, MacError> {
    let mut scratch = KtScratch::new();
    maximal_kt_core_with(rsn, query, query.filter, None, &mut scratch)
}

/// Computes the maximal (k,t)-core with an explicit (engine-resolved)
/// range-filter strategy, optional pre-grouped G-tree user targets, and
/// caller-owned scratch — the allocation-free serving path.
pub fn maximal_kt_core_with(
    rsn: &RoadSocialNetwork,
    query: &MacQuery,
    filter_choice: RangeFilterChoice,
    targets: Option<&LeafTargets>,
    scratch: &mut KtScratch,
) -> Result<Option<KtCore>, MacError> {
    match kt_core_impl(rsn, query, filter_choice, targets, scratch, None)? {
        KtOutcome::Core(core) => Ok(Some(core)),
        KtOutcome::Empty => Ok(None),
        KtOutcome::Exhausted(_) => unreachable!("unbudgeted extraction cannot exhaust"),
    }
}

/// Outcome of a budget-limited (k,t)-core extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum KtOutcome {
    /// The maximal (k,t)-core exists.
    Core(KtCore),
    /// No (k,t)-core exists for this query.
    Empty,
    /// The budget exhausted before the extraction finished, in the given
    /// pipeline phase.
    Exhausted(crate::result::QueryPhase),
}

/// Budgeted [`maximal_kt_core_with`]: the range filter runs through the
/// budgeted strategy paths and the peel is charged as a lump up front, so a
/// spent ticker stops the extraction before the expensive stages run.
pub(crate) fn maximal_kt_core_budgeted(
    rsn: &RoadSocialNetwork,
    query: &MacQuery,
    filter_choice: RangeFilterChoice,
    targets: Option<&LeafTargets>,
    scratch: &mut KtScratch,
    ticker: &mut BudgetTicker,
) -> Result<KtOutcome, MacError> {
    kt_core_impl(rsn, query, filter_choice, targets, scratch, Some(ticker))
}

/// Shared implementation of the one-shot and budgeted extractions; an absent
/// ticker runs the original unbudgeted code paths exactly.
fn kt_core_impl(
    rsn: &RoadSocialNetwork,
    query: &MacQuery,
    filter_choice: RangeFilterChoice,
    targets: Option<&LeafTargets>,
    scratch: &mut KtScratch,
    mut ticker: Option<&mut BudgetTicker>,
) -> Result<KtOutcome, MacError> {
    query.validate(rsn)?;
    let social = rsn.social();

    // Lemma 1: the road-network range filter, evaluated as one set operation
    // through the resolved RangeFilter strategy (see `RangeFilterChoice`:
    // bounded Dijkstra sweep, per-user G-tree point queries, the per-seed
    // leaf-batched walk, or the multi-seed batched walk).
    let KtScratch {
        q_locations,
        within,
        old_to_new,
        kept,
        filter: filter_scratch,
    } = scratch;
    q_locations.clear();
    q_locations.extend(query.q.iter().map(|&v| *rsn.location(v)));
    let filter = rsn.range_filter(filter_choice, q_locations.len(), query.t);
    match ticker.as_deref_mut() {
        Some(t) => {
            if !filter.users_within_with_budget(
                rsn.road(),
                q_locations,
                query.t,
                rsn.locations(),
                targets,
                filter_scratch,
                within,
                t,
            ) {
                return Ok(KtOutcome::Exhausted(crate::result::QueryPhase::Filter));
            }
        }
        None => filter.users_within_with(
            rsn.road(),
            q_locations,
            query.t,
            rsn.locations(),
            targets,
            filter_scratch,
            within,
        ),
    }
    if query.q.iter().any(|&v| !within[v as usize]) {
        // some query users are farther than t from each other
        return Ok(KtOutcome::Empty);
    }

    // Coreness upper bound on the filtered subgraph (Section III).
    let filtered = SubgraphView::from_mask(social, within);
    let (n_f, m_f) = (filtered.num_alive(), filtered.num_alive_edges());
    if n_f == 0 || query.k > coreness_upper_bound(n_f, m_f).max(1) {
        return Ok(KtOutcome::Empty);
    }

    // The peel visits every filtered vertex and edge a bounded number of
    // times; charge it as one lump before running it.
    if let Some(t) = ticker {
        if !t.charge((n_f + m_f) as u64) {
            return Ok(KtOutcome::Exhausted(
                crate::result::QueryPhase::CoreExtraction,
            ));
        }
    }

    // Lemma 2: maximal connected k-core containing Q within the filtered graph.
    // Build the induced subgraph explicitly so the decomposition ignores
    // filtered-out vertices entirely.
    kept.clear();
    kept.extend((0..social.num_vertices() as u32).filter(|&v| within[v as usize]));
    let (induced, new_to_old) = social.induced_subgraph(kept);
    old_to_new.clear();
    old_to_new.resize(social.num_vertices(), u32::MAX);
    for (new, &old) in new_to_old.iter().enumerate() {
        old_to_new[old as usize] = new as u32;
    }
    let local_q: Vec<VertexId> = query.q.iter().map(|&v| old_to_new[v as usize]).collect();
    let core = maximal_connected_k_core_containing(&induced, query.k, &local_q)?;
    Ok(match core {
        Some(local_vertices) => {
            let mut vertices: Vec<VertexId> = local_vertices
                .into_iter()
                .map(|v| new_to_old[v as usize])
                .collect();
            vertices.sort_unstable();
            KtOutcome::Core(KtCore { vertices })
        }
        None => KtOutcome::Empty,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_geom::region::PrefRegion;
    use rsn_graph::graph::Graph;
    use rsn_road::network::RoadNetwork;

    /// Two triangles of users; users 0-2 near road vertex 0, users 3-5 far away.
    fn network() -> RoadSocialNetwork {
        let social =
            Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        // road: a long line 0 -1- 1 -1- 2 -10- 3
        let road = RoadNetwork::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 10.0)]);
        let locations = vec![
            Location::vertex(0),
            Location::vertex(0),
            Location::vertex(1),
            Location::vertex(3),
            Location::vertex(3),
            Location::vertex(3),
        ];
        let attrs = vec![vec![1.0, 1.0]; 6];
        RoadSocialNetwork::new(social, road, locations, attrs).unwrap()
    }

    fn region() -> PrefRegion {
        PrefRegion::from_ranges(&[(0.2, 0.4)]).unwrap()
    }

    #[test]
    fn distance_filter_removes_far_users() {
        let rsn = network();
        // t = 2: only users located within distance 2 of user 0 remain
        let q = MacQuery::new(vec![0], 2, 2.0, region());
        let core = maximal_kt_core(&rsn, &q).unwrap().unwrap();
        assert_eq!(core.vertices, vec![0, 1, 2]);

        // t large enough: the 2-core containing 0 is still only the first
        // triangle because vertex 3's triangle connects through vertex 2/3
        // with enough degree -- actually the whole graph is a 2-core.
        let q2 = MacQuery::new(vec![0], 2, 100.0, region());
        let core2 = maximal_kt_core(&rsn, &q2).unwrap().unwrap();
        assert_eq!(core2.vertices.len(), 6);
    }

    #[test]
    fn no_core_when_query_too_far_apart() {
        let rsn = network();
        let q = MacQuery::new(vec![0, 3], 2, 2.0, region());
        assert_eq!(maximal_kt_core(&rsn, &q).unwrap(), None);
    }

    #[test]
    fn no_core_when_k_too_large() {
        let rsn = network();
        let q = MacQuery::new(vec![0], 5, 100.0, region());
        assert_eq!(maximal_kt_core(&rsn, &q).unwrap(), None);
    }

    #[test]
    fn invalid_query_is_an_error() {
        let rsn = network();
        let q = MacQuery::new(vec![], 2, 2.0, region());
        assert!(maximal_kt_core(&rsn, &q).is_err());
    }

    #[test]
    fn distance_oracle_follows_the_index() {
        let indexed = network().with_gtree_index_capacity(4);
        assert!(indexed.gtree().is_some());
        assert!(indexed.distance_oracle().is_gtree());
        let plain = network();
        assert!(plain.gtree().is_none());
        assert!(!plain.distance_oracle().is_gtree());
    }

    #[test]
    fn all_range_filter_strategies_yield_identical_kt_cores() {
        use rsn_road::rangefilter::RangeFilterChoice;
        let rsn = network().with_gtree_index_capacity(4);
        let strategies = [
            RangeFilterChoice::Auto,
            RangeFilterChoice::DijkstraSweep,
            RangeFilterChoice::GTreePoint,
            RangeFilterChoice::GTreeLeafBatched,
            RangeFilterChoice::GTreeMultiSeedBatched,
        ];
        for (k, t) in [(2u32, 2.0f64), (2, 100.0), (3, 2.0), (1, 11.0)] {
            let reference = maximal_kt_core(
                &rsn,
                &MacQuery::new(vec![0], k, t, region())
                    .with_range_filter(RangeFilterChoice::DijkstraSweep),
            )
            .unwrap();
            for &choice in &strategies {
                let q = MacQuery::new(vec![0], k, t, region()).with_range_filter(choice);
                assert_eq!(
                    maximal_kt_core(&rsn, &q).unwrap(),
                    reference,
                    "filter {choice:?} disagrees for k={k}, t={t}"
                );
            }
        }
    }

    #[test]
    fn gtree_filter_choice_without_index_falls_back_to_dijkstra() {
        use rsn_road::rangefilter::RangeFilterChoice;
        let rsn = network();
        assert!(rsn.gtree().is_none());
        let q = MacQuery::new(vec![0], 2, 2.0, region())
            .with_range_filter(RangeFilterChoice::GTreePoint);
        let core = maximal_kt_core(&rsn, &q).unwrap().unwrap();
        assert_eq!(core.vertices, vec![0, 1, 2]);
    }
}

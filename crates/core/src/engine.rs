//! The prepared, shareable query-serving engine.
//!
//! The paper frames MAC search as an *online query service* over a fixed
//! road-social network: the network, its G-tree index, and the cost-model
//! constants are all per-network state that should be prepared **once** and
//! then serve many queries. [`MacEngine`] is that preparation:
//!
//! * it owns the [`RoadSocialNetwork`] behind an `Arc`, so an engine is
//!   cheaply `Clone + Send + Sync` — one engine can be shared by any number
//!   of serving threads;
//! * when the network carries a G-tree index it pre-groups every user
//!   location by G-tree leaf ([`rsn_road::rangefilter::group_user_targets`]),
//!   a per-network computation the batched range filters would otherwise
//!   repeat per query;
//! * at build time it runs a **measured calibration probe** — one timed
//!   t-bounded Dijkstra sweep and one timed multi-seed G-tree walk over the
//!   same probe query — replacing the analytic constant of the `Auto`
//!   range-filter cost model with the measured per-network/per-machine unit
//!   cost ratio (see [`AutoCalibration`]).
//!
//! Per-thread execution state lives in [`QuerySession`] (obtained via
//! [`MacEngine::session`]); the engine itself holds no mutable state.

use crate::network::RoadSocialNetwork;
use crate::query::MacQuery;
use crate::session::QuerySession;
use rsn_road::gtree::LeafTargets;
use rsn_road::network::Location;
use rsn_road::rangefilter::{
    auto_cost_estimates, group_user_targets, resolve_auto_calibrated, AutoCalibration,
    FilterScratch, RangeFilter, RangeFilterChoice,
};
use std::sync::Arc;
use std::time::Instant;

/// Which search algorithm answers a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlgorithmChoice {
    /// Let the executing session resolve through its engine's calibration:
    /// the exact global search while the maximal (k,t)-core fits under the
    /// calibrated size threshold
    /// ([`EngineCalibration::local_core_threshold`]), the local
    /// expand-and-verify framework beyond it (the paper's scalable path,
    /// Section VI).
    #[default]
    Auto,
    /// Always run the DFS-based global search (Algorithm 1) — exact.
    Global,
    /// Always run the local expand-and-verify framework (Algorithms 3–5) —
    /// the paper's heuristic for large cores; results are confirmed against
    /// the fixed-weight peeling oracle but cells may be missed.
    Local,
}

/// Default (k,t)-core size above which `AlgorithmChoice::Auto` switches from
/// the exact global search to the local framework. The global search's
/// arrangement work grows super-linearly with the core (every level of the
/// peel re-arranges the surviving leaves), while the local framework's
/// expand-and-verify cost is governed by the candidate budget; the paper's
/// evaluation (Fig. 13–14) shows the local algorithms winning by orders of
/// magnitude on large cores.
pub const DEFAULT_LOCAL_CORE_THRESHOLD: usize = 4096;

/// Maximum number of query locations the calibration probe uses.
const PROBE_QUERY_LOCATIONS: usize = 4;
/// Hop radius the probe's threshold aims for (multiplied by the sampled
/// average edge weight); large enough to make both strategies do real work,
/// small enough to keep engine builds fast.
const PROBE_HOP_RADIUS: f64 = 12.0;

/// What the engine measured (or assumed) at build time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineCalibration {
    /// The `Auto` range-filter conversion factor: measured per-network when
    /// the probe ran and was trusted, the analytic default otherwise.
    pub filter: AutoCalibration,
    /// Wall-clock seconds of the timed probe sweep (0.0 when no probe ran).
    pub sweep_probe_seconds: f64,
    /// Wall-clock seconds of the timed probe walk (0.0 when no probe ran).
    pub walk_probe_seconds: f64,
    /// The distance threshold the probe used (0.0 when no probe ran).
    pub probe_t: f64,
    /// (k,t)-core size above which `AlgorithmChoice::Auto` resolves to the
    /// local framework instead of the exact global search.
    pub local_core_threshold: usize,
}

impl Default for EngineCalibration {
    fn default() -> Self {
        EngineCalibration {
            filter: AutoCalibration::default(),
            sweep_probe_seconds: 0.0,
            walk_probe_seconds: 0.0,
            probe_t: 0.0,
            local_core_threshold: DEFAULT_LOCAL_CORE_THRESHOLD,
        }
    }
}

impl EngineCalibration {
    /// Whether the filter constant came from an accepted build-time
    /// measurement (as opposed to the analytic fallback).
    pub fn is_measured(&self) -> bool {
        self.filter.is_measured()
    }
}

#[derive(Debug)]
struct EngineInner {
    rsn: RoadSocialNetwork,
    calibration: EngineCalibration,
    /// User seeds pre-grouped by G-tree leaf (present iff the network has an
    /// index) — shared by every session's batched filter evaluations.
    user_targets: Option<LeafTargets>,
}

/// A prepared query-serving engine over one road-social network.
///
/// Build once ([`build`](Self::build)), then open one [`QuerySession`] per
/// serving thread ([`session`](Self::session)) and execute many queries
/// through it. Cloning an engine clones an `Arc` — all clones share the
/// network, the index, the pre-grouped user targets, and the calibration.
///
/// ```
/// use rsn_core::{MacEngine, MacQuery};
/// use rsn_geom::region::PrefRegion;
/// # use rsn_graph::graph::Graph;
/// # use rsn_road::network::{Location, RoadNetwork};
/// # let social = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)]);
/// # let road = RoadNetwork::from_edges(2, &[(0, 1, 1.0)]);
/// # let locations = vec![Location::vertex(0); 4];
/// # let attrs = vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![3.0, 3.0], vec![1.5, 2.5]];
/// # let rsn = rsn_core::RoadSocialNetwork::new(social, road, locations, attrs).unwrap();
/// let engine = MacEngine::build(rsn); // calibration runs here, once
/// let mut session = engine.session(); // per-thread scratch lives here
/// let region = PrefRegion::from_ranges(&[(0.2, 0.8)]).unwrap();
/// let query = MacQuery::new(vec![0], 2, 10.0, region);
/// let result = session.execute(&query).unwrap();
/// assert!(!result.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct MacEngine {
    inner: Arc<EngineInner>,
}

impl MacEngine {
    /// Prepares an engine, running the measured calibration probe (one timed
    /// sweep + one timed multi-seed walk) when the network carries a G-tree
    /// index. Build cost is one probe — milliseconds on laptop-scale
    /// networks — plus the user-target grouping.
    pub fn build(rsn: RoadSocialNetwork) -> Self {
        Self::assemble(rsn, true)
    }

    /// Prepares an engine **without** the timed probe: the `Auto` cost model
    /// keeps its analytic constants. Deterministic-build escape hatch for
    /// tests and reproducible benchmarks.
    pub fn build_uncalibrated(rsn: RoadSocialNetwork) -> Self {
        Self::assemble(rsn, false)
    }

    fn assemble(rsn: RoadSocialNetwork, measure: bool) -> Self {
        let user_targets = rsn
            .gtree()
            .map(|tree| group_user_targets(tree, rsn.road(), rsn.locations()));
        let mut calibration = EngineCalibration::default();
        if measure {
            if let (Some(tree), Some(targets)) = (rsn.gtree(), user_targets.as_ref()) {
                calibration = Self::probe(&rsn, tree, targets);
            }
        }
        MacEngine {
            inner: Arc::new(EngineInner {
                rsn,
                calibration,
                user_targets,
            }),
        }
    }

    /// The build-time calibration probe: times one t-bounded sweep and one
    /// multi-seed walk over the same probe query (the first few user
    /// locations, threshold ≈ [`PROBE_HOP_RADIUS`] average edge weights),
    /// divides each by its modeled unit count, and accepts the measured
    /// ratio when both timings clear the noise floor
    /// ([`AutoCalibration::from_probe`]).
    fn probe(
        rsn: &RoadSocialNetwork,
        tree: &rsn_road::gtree::GTree,
        targets: &LeafTargets,
    ) -> EngineCalibration {
        let mut calibration = EngineCalibration::default();
        let users = rsn.locations();
        if users.is_empty() || rsn.road().num_vertices() == 0 {
            return calibration;
        }
        let q_locs: Vec<Location> = users
            .iter()
            .copied()
            .take(PROBE_QUERY_LOCATIONS.min(users.len()))
            .collect();
        // The same deterministic sample the cost model turns t into a hop
        // radius with, so the probe threshold and the unit estimates agree.
        let avg_w = rsn_road::rangefilter::sampled_avg_edge_weight(rsn.road());
        if !(avg_w.is_finite() && avg_w > 0.0) {
            return calibration;
        }
        let probe_t = avg_w * PROBE_HOP_RADIUS;
        let Some((sweep_units, batched_units)) =
            auto_cost_estimates(rsn.road(), tree, q_locs.len(), probe_t, users.len())
        else {
            return calibration;
        };

        let mut scratch = FilterScratch::new();
        let mut out = Vec::new();
        let mut time_filter = |filter: &RangeFilter<'_>| {
            // Best of two repetitions: the first run grows the scratch
            // buffers, the second measures the steady state.
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                let start = Instant::now();
                filter.users_within_with(
                    rsn.road(),
                    &q_locs,
                    probe_t,
                    users,
                    Some(targets),
                    &mut scratch,
                    &mut out,
                );
                best = best.min(start.elapsed().as_secs_f64());
            }
            best
        };
        let sweep_seconds = time_filter(&RangeFilter::DijkstraSweep);
        let walk_seconds = time_filter(&RangeFilter::GTreeMultiSeedBatched(tree));
        calibration.filter =
            AutoCalibration::from_probe(sweep_seconds, sweep_units, walk_seconds, batched_units);
        calibration.sweep_probe_seconds = sweep_seconds;
        calibration.walk_probe_seconds = walk_seconds;
        calibration.probe_t = probe_t;
        calibration
    }

    /// The served network (shared by all clones of this engine).
    pub fn network(&self) -> &RoadSocialNetwork {
        &self.inner.rsn
    }

    /// What the engine measured (or assumed) at build time.
    pub fn calibration(&self) -> &EngineCalibration {
        &self.inner.calibration
    }

    /// User seeds pre-grouped by G-tree leaf, when the network has an index.
    pub fn user_targets(&self) -> Option<&LeafTargets> {
        self.inner.user_targets.as_ref()
    }

    /// Opens a per-thread serving session holding all reusable query scratch.
    pub fn session(&self) -> QuerySession {
        QuerySession::new(self.clone())
    }

    /// Resolves a query's range-filter strategy through the engine's
    /// calibration. The compat mapping of the deprecated oracle knob is
    /// honoured first ([`MacQuery::effective_filter`]: explicit `filter`
    /// wins, legacy `OracleChoice::GTree` selects the per-user point path);
    /// a remaining `Auto` goes through the calibrated crossover rule with
    /// the measured per-network constant.
    pub fn resolve_filter(&self, query: &MacQuery) -> RangeFilterChoice {
        match query.effective_filter() {
            RangeFilterChoice::Auto => resolve_auto_calibrated(
                self.inner.rsn.road(),
                self.inner.rsn.gtree(),
                query.q.len(),
                query.t,
                self.inner.rsn.num_users(),
                &self.inner.calibration.filter,
            ),
            explicit => explicit,
        }
    }

    /// Resolves an [`AlgorithmChoice`] given the query's maximal (k,t)-core
    /// size (known after the shared context build). Never returns `Auto`.
    pub fn resolve_algorithm(
        &self,
        requested: AlgorithmChoice,
        core_size: usize,
    ) -> AlgorithmChoice {
        match requested {
            AlgorithmChoice::Auto => {
                if core_size <= self.inner.calibration.local_core_threshold {
                    AlgorithmChoice::Global
                } else {
                    AlgorithmChoice::Local
                }
            }
            explicit => explicit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_geom::region::PrefRegion;
    use rsn_graph::graph::Graph;
    use rsn_road::network::RoadNetwork;

    fn network(indexed: bool) -> RoadSocialNetwork {
        let social =
            Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        let road = RoadNetwork::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 10.0)]);
        let locations = vec![
            Location::vertex(0),
            Location::vertex(0),
            Location::vertex(1),
            Location::vertex(3),
            Location::vertex(3),
            Location::vertex(3),
        ];
        let attrs = vec![vec![1.0, 1.0]; 6];
        let rsn = RoadSocialNetwork::new(social, road, locations, attrs).unwrap();
        if indexed {
            rsn.with_gtree_index_capacity(4)
        } else {
            rsn
        }
    }

    fn query() -> MacQuery {
        let region = PrefRegion::from_ranges(&[(0.2, 0.4)]).unwrap();
        MacQuery::new(vec![0], 2, 2.0, region)
    }

    #[test]
    fn engine_clones_share_the_network() {
        let engine = MacEngine::build_uncalibrated(network(true));
        let clone = engine.clone();
        assert!(std::ptr::eq(engine.network(), clone.network()));
        assert!(engine.user_targets().is_some());
    }

    #[test]
    fn unindexed_engine_has_no_targets_and_sweeps() {
        let engine = MacEngine::build(network(false));
        assert!(engine.user_targets().is_none());
        assert!(!engine.calibration().is_measured());
        assert_eq!(
            engine.resolve_filter(&query()),
            RangeFilterChoice::DijkstraSweep
        );
    }

    #[test]
    fn measured_calibration_stays_in_trusted_bounds() {
        use rsn_road::rangefilter::AUTO_SWEEP_CELL_COST_BOUNDS;
        let engine = MacEngine::build(network(true));
        let c = engine.calibration().filter.sweep_cell_cost;
        let (lo, hi) = AUTO_SWEEP_CELL_COST_BOUNDS;
        assert!(
            (lo..=hi).contains(&c),
            "measured constant {c} outside trusted bounds"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_oracle_knob_still_selects_the_point_path() {
        use rsn_road::oracle::OracleChoice;
        let engine = MacEngine::build_uncalibrated(network(true));
        let q = query().with_oracle(OracleChoice::GTree);
        assert_eq!(engine.resolve_filter(&q), RangeFilterChoice::GTreePoint);
        // An explicit filter always wins over the oracle knob.
        let q2 = query()
            .with_oracle(OracleChoice::GTree)
            .with_range_filter(RangeFilterChoice::DijkstraSweep);
        assert_eq!(engine.resolve_filter(&q2), RangeFilterChoice::DijkstraSweep);
    }

    #[test]
    fn algorithm_auto_switches_on_core_size() {
        let engine = MacEngine::build_uncalibrated(network(true));
        let thr = engine.calibration().local_core_threshold;
        assert_eq!(
            engine.resolve_algorithm(AlgorithmChoice::Auto, thr),
            AlgorithmChoice::Global
        );
        assert_eq!(
            engine.resolve_algorithm(AlgorithmChoice::Auto, thr + 1),
            AlgorithmChoice::Local
        );
        assert_eq!(
            engine.resolve_algorithm(AlgorithmChoice::Local, 1),
            AlgorithmChoice::Local
        );
        assert_eq!(
            engine.resolve_algorithm(AlgorithmChoice::Global, usize::MAX),
            AlgorithmChoice::Global
        );
    }
}

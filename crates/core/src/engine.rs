//! The prepared, shareable — and now **mutable** — query-serving engine.
//!
//! The paper frames MAC search as an *online query service* over a
//! road-social network: the network, its G-tree index, and the cost-model
//! constants are all per-network state that should be prepared **once** and
//! then serve many queries. [`MacEngine`] is that preparation:
//!
//! * it owns the [`RoadSocialNetwork`] behind an `Arc`, so an engine is
//!   cheaply `Clone + Send + Sync` — one engine can be shared by any number
//!   of serving threads;
//! * when the network carries a G-tree index it pre-groups every user
//!   location by G-tree leaf ([`rsn_road::rangefilter::group_user_targets`]),
//!   a per-network computation the batched range filters would otherwise
//!   repeat per query;
//! * at build time it runs a **measured calibration probe** — one timed
//!   t-bounded Dijkstra sweep and one timed multi-seed G-tree walk over the
//!   same probe query — replacing the analytic constant of the `Auto`
//!   range-filter cost model with the measured per-network/per-machine unit
//!   cost ratio (see [`AutoCalibration`]).
//!
//! Real road networks change while a service runs — traffic reweights edges,
//! users appear and move. [`MacEngine::apply_updates`] absorbs a
//! [`NetworkDelta`] **without** a rebuild: the prepared state lives in an
//! immutable *epoch* behind an `RwLock`ed `Arc`, updates copy the current
//! epoch, patch it incrementally (edge weights in place, dirty G-tree matrix
//! paths via [`rsn_road::gtree::GTree::apply_edge_updates`], per-leaf user
//! rows via the incremental target maintenance), and swap the pointer. Every
//! [`QuerySession`] pins one epoch per query, so in-flight queries finish on
//! a consistent snapshot, the next query sees the new network, and all
//! session scratch survives untouched. The calibration probe re-runs only
//! when the sampled average edge weight has drifted past
//! [`RECALIBRATION_DRIFT`] — the one network statistic the `Auto` cost model
//! reads.
//!
//! Per-thread execution state lives in [`QuerySession`] (obtained via
//! [`MacEngine::session`]); the engine itself holds no per-query state.

use crate::budget::{BudgetTicker, QueryBudget};
use crate::context::{BuildOutcome, ContextScratch, SearchContext};
use crate::error::{DeltaEntry, MacError};
use crate::global::{GlobalSearch, GsOptions, GsScratch};
use crate::ktcore::KtOutcome;
use crate::local::{ExpandStrategy, LocalSearch};
use crate::network::RoadSocialNetwork;
use crate::policy::ExecutionPolicy;
use crate::query::MacQuery;
use crate::session::QuerySession;
use rsn_geom::region::PrefRegion;
use rsn_geom::weights::WeightVector;
use rsn_graph::graph::VertexId;
use rsn_road::gtree::{GTreeUpdateStats, LeafTargets};
use rsn_road::network::{EdgeUpdate, Location};
use rsn_road::rangefilter::{
    add_user_target, auto_cost_estimates, group_user_targets, remove_user_target,
    resolve_auto_calibrated, sampled_avg_edge_weight, AutoCalibration, FilterScratch, RangeFilter,
    RangeFilterChoice,
};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Which search algorithm answers a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AlgorithmChoice {
    /// Let the executing session resolve through its engine's calibration:
    /// the exact global search while the maximal (k,t)-core fits under the
    /// calibrated size threshold
    /// ([`EngineCalibration::local_core_threshold`]), the local
    /// expand-and-verify framework beyond it (the paper's scalable path,
    /// Section VI).
    #[default]
    Auto,
    /// Always run the DFS-based global search (Algorithm 1) — exact.
    Global,
    /// Always run the local expand-and-verify framework (Algorithms 3–5) —
    /// the paper's heuristic for large cores; results are confirmed against
    /// the fixed-weight peeling oracle but cells may be missed.
    Local,
}

/// Fallback (k,t)-core size above which `AlgorithmChoice::Auto` switches
/// from the exact global search to the local framework, used whenever the
/// build-time crossover probe cannot produce a trustworthy measurement
/// (uncalibrated builds, empty or near-empty networks, probe cores outside
/// the probe's accepted core-size window, timings under the noise floor).
/// The
/// global search's arrangement work grows super-linearly with the core
/// (every level of the peel re-arranges the surviving leaves), while the
/// local framework's expand-and-verify cost is governed by the candidate
/// budget; the paper's evaluation (Fig. 13–14) shows the local algorithms
/// winning by orders of magnitude on large cores.
pub const DEFAULT_LOCAL_CORE_THRESHOLD: usize = 4096;

/// Clamp bounds for the measured GS→LS crossover threshold. The lower bound
/// keeps small cores on the exact global search no matter how flattering the
/// local timing looked (the local framework is a heuristic; exactness is
/// cheap at this size), the upper bound keeps a lucky global timing from
/// routing arbitrarily large cores to the super-linear exact path.
const CROSSOVER_THRESHOLD_BOUNDS: (usize, usize) = (256, 1 << 22);

/// Probe-core window inside which the crossover measurement is trusted.
/// Below the floor both algorithms finish in noise. The ceiling bounds the
/// probe's own cost: the exact global search is super-linear in the core, so
/// timing it on a core of thousands costs whole seconds of engine build —
/// instead the probe *shrinks its distance threshold* until the anchor core
/// fits under the ceiling and extrapolates the crossover from there.
const CROSSOVER_PROBE_CORE_RANGE: (usize, usize) = (32, 128);

/// How many times the crossover probe shrinks its distance threshold looking
/// for an anchor core inside [`CROSSOVER_PROBE_CORE_RANGE`].
const CROSSOVER_PROBE_ATTEMPTS: usize = 8;

/// Seconds below which a crossover probe timing is treated as noise.
const CROSSOVER_NOISE_FLOOR: f64 = 1e-6;

/// Hard wall-clock cap on the *entire* crossover probe — every extraction
/// attempt and both timed searches run under one deadline-armed
/// [`BudgetTicker`](rsn_road::budget::BudgetTicker), and exhaustion keeps
/// [`DEFAULT_LOCAL_CORE_THRESHOLD`]. An engine build must never stall on its
/// own calibration: the probe costs single-digit milliseconds on networks
/// where it matters, so a build that would blow this cap is one where the
/// measurement is untrustworthy anyway (debug builds, starved machines).
const CROSSOVER_PROBE_DEADLINE: Duration = Duration::from_millis(250);

/// Relative drift of the sampled average edge weight beyond which
/// [`MacEngine::apply_updates`] re-runs the calibration probe. The average
/// edge weight is the only network statistic the `Auto` cost model reads
/// from the weights (it turns `t` into an expected hop radius), so while it
/// holds steady the measured sweep-vs-walk constant keeps describing the
/// network and the probe would be wasted work.
pub const RECALIBRATION_DRIFT: f64 = 0.2;

/// Maximum number of query locations the calibration probe uses.
const PROBE_QUERY_LOCATIONS: usize = 4;
/// Hop radius the probe's threshold aims for (multiplied by the sampled
/// average edge weight); large enough to make both strategies do real work,
/// small enough to keep engine builds fast.
const PROBE_HOP_RADIUS: f64 = 12.0;

/// What the engine measured (or assumed) at build time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineCalibration {
    /// The `Auto` range-filter conversion factor: measured per-network when
    /// the probe ran and was trusted, the analytic default otherwise.
    pub filter: AutoCalibration,
    /// Wall-clock seconds of the timed probe sweep (0.0 when no probe ran).
    pub sweep_probe_seconds: f64,
    /// Wall-clock seconds of the timed probe walk (0.0 when no probe ran).
    pub walk_probe_seconds: f64,
    /// The distance threshold the probe used (0.0 when no probe ran).
    pub probe_t: f64,
    /// (k,t)-core size above which `AlgorithmChoice::Auto` resolves to the
    /// local framework instead of the exact global search: measured
    /// per-network by the build-time crossover probe when it ran and was
    /// trusted, [`DEFAULT_LOCAL_CORE_THRESHOLD`] otherwise.
    pub local_core_threshold: usize,
}

impl Default for EngineCalibration {
    fn default() -> Self {
        EngineCalibration {
            filter: AutoCalibration::default(),
            sweep_probe_seconds: 0.0,
            walk_probe_seconds: 0.0,
            probe_t: 0.0,
            local_core_threshold: DEFAULT_LOCAL_CORE_THRESHOLD,
        }
    }
}

impl EngineCalibration {
    /// Whether the filter constant came from an accepted build-time
    /// measurement (as opposed to the analytic fallback).
    pub fn is_measured(&self) -> bool {
        self.filter.is_measured()
    }
}

/// A batch of road-network changes for [`MacEngine::apply_updates`]: traffic
/// reweights of existing road segments plus user location churn. Applied
/// atomically — an invalid entry rejects the whole delta and the served
/// state is unchanged.
///
/// Topology is fixed: updates reweight existing edges only (the G-tree
/// partition and border structure depend on the adjacency alone, which is
/// what makes the incremental refresh exact); adding or removing road
/// segments or social users requires building a new engine.
///
/// A delta applies **sequentially — all `edge_updates`, then all
/// `user_moves` — and every step must leave a valid network.** In
/// particular, shrinking a segment below a *currently* resident on-edge
/// user's offset is rejected even when a later move in the same delta would
/// have taken that user elsewhere: issue the moves as their own delta first.
/// (The opposite order would be worse: a move targeting an offset that only
/// exists after a reweight grows the segment.)
#[derive(Debug, Clone, Default)]
pub struct NetworkDelta {
    /// Road-segment reweights (the last update of an edge wins).
    pub edge_updates: Vec<EdgeUpdate>,
    /// `(user, new location)` moves — covering arrivals ("appear at their
    /// first real location") and departures ("park far away") as well.
    pub user_moves: Vec<(VertexId, Location)>,
}

impl NetworkDelta {
    /// An empty delta.
    pub fn new() -> Self {
        NetworkDelta::default()
    }

    /// Adds a road-segment reweight.
    pub fn reweight_edge(mut self, u: u32, v: u32, weight: f64) -> Self {
        self.edge_updates.push(EdgeUpdate::new(u, v, weight));
        self
    }

    /// Adds a user move.
    pub fn move_user(mut self, user: VertexId, location: Location) -> Self {
        self.user_moves.push((user, location));
        self
    }

    /// Whether the delta carries no changes.
    pub fn is_empty(&self) -> bool {
        self.edge_updates.is_empty() && self.user_moves.is_empty()
    }
}

/// What one [`MacEngine::apply_updates`] call did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UpdateStats {
    /// Epoch id the engine now serves (monotonically increasing from 0).
    pub epoch: u64,
    /// Road-segment reweights applied.
    pub edges_reweighted: usize,
    /// User moves applied.
    pub users_moved: usize,
    /// Users whose grouped filter seeds were refreshed: every moved user
    /// plus every on-edge user sitting on a reweighted segment (indexed
    /// engines only — an unindexed engine keeps no grouping).
    pub user_targets_refreshed: usize,
    /// G-tree incremental-refresh statistics (`None` without an index or
    /// without edge updates).
    pub gtree: Option<GTreeUpdateStats>,
    /// Whether the calibration probe re-ran (sampled average edge weight
    /// drifted past [`RECALIBRATION_DRIFT`]).
    pub recalibrated: bool,
    /// Wall-clock seconds for the whole update.
    pub elapsed_seconds: f64,
}

/// The stages of one [`MacEngine::apply_updates`] call, in execution order.
/// The update pipeline is copy-on-write: every stage before [`Swap`](UpdateStage::Swap)
/// works on a private copy of the epoch, so a failure (or an injected fault —
/// see the `failpoints` feature) at any stage leaves the served epoch
/// untouched, and `Swap` itself is a single pointer store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateStage {
    /// Up-front validation of the whole delta (per-entry, indexed errors).
    Validate,
    /// Incremental G-tree matrix refresh for the reweighted edges.
    GTreeRefresh,
    /// Per-leaf user-target row edits (moved + on-edge users).
    LeafEdits,
    /// Drift-gated calibration re-probe.
    Recalibrate,
    /// Publishing the new epoch (the single pointer store).
    Swap,
}

impl UpdateStage {
    /// All stages, in execution order.
    pub const ALL: [UpdateStage; 5] = [
        UpdateStage::Validate,
        UpdateStage::GTreeRefresh,
        UpdateStage::LeafEdits,
        UpdateStage::Recalibrate,
        UpdateStage::Swap,
    ];

    /// Stable lowercase name (log/diagnostic label).
    pub fn name(self) -> &'static str {
        match self {
            UpdateStage::Validate => "validate",
            UpdateStage::GTreeRefresh => "gtree-refresh",
            UpdateStage::LeafEdits => "leaf-edits",
            UpdateStage::Recalibrate => "recalibrate",
            UpdateStage::Swap => "swap",
        }
    }
}

/// An injectable fault hook for [`MacEngine::apply_updates`] (test-only,
/// behind the `failpoints` feature): called at each [`UpdateStage`], may
/// return an error — or panic — to simulate a fault at that stage.
#[cfg(feature = "failpoints")]
type FailpointHook = Arc<dyn Fn(UpdateStage) -> Result<(), MacError> + Send + Sync>;

#[derive(Debug)]
struct EngineInner {
    rsn: RoadSocialNetwork,
    calibration: EngineCalibration,
    /// User seeds pre-grouped by G-tree leaf (present iff the network has an
    /// index) — shared by every session's batched filter evaluations.
    user_targets: Option<LeafTargets>,
    /// Monotonic epoch id (0 at build, +1 per applied delta).
    epoch: u64,
    /// The sampled average edge weight at the last calibration (0.0 when no
    /// probe ran) — the drift reference for re-probing.
    calibrated_avg_edge_weight: f64,
    /// Whether the build requested measurement (updates only re-probe then).
    measured_build: bool,
}

struct EngineShared {
    /// The epoch currently being served. Readers clone the `Arc` (one brief
    /// read lock per query); updates build the next epoch off-lock and swap.
    current: RwLock<Arc<EngineInner>>,
    /// The engine-level [`ExecutionPolicy`]: every session opened from any
    /// clone starts from it. Fixed at build (epochs change the network, not
    /// the policy); a session overrides it locally via
    /// [`QuerySession::with_policy`](crate::session::QuerySession::with_policy).
    policy: ExecutionPolicy,
    /// Serializes writers so concurrent deltas cannot lose updates.
    update_lock: Mutex<()>,
    /// Test-only fault-injection hook, fired at each [`UpdateStage`].
    #[cfg(feature = "failpoints")]
    failpoint: Mutex<Option<FailpointHook>>,
}

impl std::fmt::Debug for EngineShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Manual impl: the failpoint hook (when compiled in) is an opaque
        // closure with no useful Debug form.
        f.debug_struct("EngineShared")
            .field("current", &self.current)
            .field("update_lock", &self.update_lock)
            .finish_non_exhaustive()
    }
}

impl EngineShared {
    /// Reads the served epoch, recovering from lock poisoning. The guarded
    /// value is a single `Arc` that is only ever *stored* (never mutated in
    /// place) under the write lock, so even a poisoned lock still guards a
    /// fully consistent epoch — a panic between acquiring the write guard
    /// and the store leaves the *previous* epoch in place, which is exactly
    /// the rejected-delta contract.
    fn read_current(&self) -> Arc<EngineInner> {
        match self.current.read() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Acquires the writer-serialization lock, recovering from poisoning:
    /// the guarded value is a unit — there is no state to be torn — so a
    /// previous writer's panic must not brick every later update.
    fn lock_updates(&self) -> std::sync::MutexGuard<'_, ()> {
        match self.update_lock.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Fires the injected fault hook for `stage` (no-op without the
    /// `failpoints` feature).
    #[cfg(feature = "failpoints")]
    fn fire_failpoint(&self, stage: UpdateStage) -> Result<(), MacError> {
        let hook = match self.failpoint.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        match hook {
            Some(hook) => hook(stage),
            None => Ok(()),
        }
    }

    #[cfg(not(feature = "failpoints"))]
    #[inline(always)]
    fn fire_failpoint(&self, _stage: UpdateStage) -> Result<(), MacError> {
        Ok(())
    }
}

/// A prepared query-serving engine over one road-social network.
///
/// Build once ([`build`](Self::build)), then open one [`QuerySession`] per
/// serving thread ([`session`](Self::session)) and execute many queries
/// through it. Cloning an engine clones an `Arc` — all clones (and all
/// sessions opened from them) share the network, the index, the pre-grouped
/// user targets, and the calibration, **including every later
/// [`apply_updates`](Self::apply_updates)**: a delta applied through any
/// clone is visible to all of them from their next query on.
///
/// ```
/// use rsn_core::{MacEngine, MacQuery};
/// use rsn_geom::region::PrefRegion;
/// # use rsn_graph::graph::Graph;
/// # use rsn_road::network::{Location, RoadNetwork};
/// # let social = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)]);
/// # let road = RoadNetwork::from_edges(2, &[(0, 1, 1.0)]);
/// # let locations = vec![Location::vertex(0); 4];
/// # let attrs = vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![3.0, 3.0], vec![1.5, 2.5]];
/// # let rsn = rsn_core::RoadSocialNetwork::new(social, road, locations, attrs).unwrap();
/// let engine = MacEngine::build(rsn); // calibration runs here, once
/// let mut session = engine.session(); // per-thread scratch lives here
/// let region = PrefRegion::from_ranges(&[(0.2, 0.8)]).unwrap();
/// let query = MacQuery::new(vec![0], 2, 10.0, region);
/// let result = session.execute(&query).unwrap();
/// assert!(!result.is_empty());
/// // Traffic: reweight the road edge; the session serves the new epoch.
/// use rsn_core::NetworkDelta;
/// let stats = engine
///     .apply_updates(&NetworkDelta::new().reweight_edge(0, 1, 2.5))
///     .unwrap();
/// assert_eq!(stats.epoch, 1);
/// assert!(!session.execute(&query).unwrap().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct MacEngine {
    shared: Arc<EngineShared>,
}

/// One immutable snapshot of the engine's prepared state. Obtained from
/// [`MacEngine::epoch`]; a query pins one epoch for its whole execution, so
/// a concurrently applied [`NetworkDelta`] never changes the network under a
/// running query. Cloning an epoch clones an `Arc`.
#[derive(Debug, Clone)]
pub struct EngineEpoch {
    inner: Arc<EngineInner>,
}

impl EngineEpoch {
    /// The served network of this epoch.
    pub fn network(&self) -> &RoadSocialNetwork {
        &self.inner.rsn
    }

    /// What the engine measured (or assumed) when this epoch was prepared.
    pub fn calibration(&self) -> &EngineCalibration {
        &self.inner.calibration
    }

    /// User seeds pre-grouped by G-tree leaf, when the network has an index.
    pub fn user_targets(&self) -> Option<&LeafTargets> {
        self.inner.user_targets.as_ref()
    }

    /// Monotonic epoch id (0 at build, +1 per applied delta).
    pub fn id(&self) -> u64 {
        self.inner.epoch
    }

    /// Resolves a query's range-filter strategy through this epoch's
    /// calibration: an explicit query-level `filter` wins, a remaining
    /// `Auto` goes through the calibrated crossover rule with the measured
    /// per-network constant.
    pub fn resolve_filter(&self, query: &MacQuery) -> RangeFilterChoice {
        self.resolve_filter_with(query, RangeFilterChoice::Auto)
    }

    /// [`resolve_filter`](Self::resolve_filter) with an
    /// [`ExecutionPolicy`]-level default interposed: a query-level `Auto`
    /// falls back to `policy_default`, and only when that is also `Auto`
    /// does the calibrated crossover rule decide. This is the resolution a
    /// [`QuerySession`] applies.
    pub fn resolve_filter_with(
        &self,
        query: &MacQuery,
        policy_default: RangeFilterChoice,
    ) -> RangeFilterChoice {
        let requested = match query.filter {
            RangeFilterChoice::Auto => policy_default,
            explicit => explicit,
        };
        match requested {
            RangeFilterChoice::Auto => resolve_auto_calibrated(
                self.inner.rsn.road(),
                self.inner.rsn.gtree(),
                query.q.len(),
                query.t,
                self.inner.rsn.num_users(),
                &self.inner.calibration.filter,
            ),
            explicit => explicit,
        }
    }

    /// Resolves an [`AlgorithmChoice`] given the query's maximal (k,t)-core
    /// size (known after the shared context build). Never returns `Auto`.
    pub fn resolve_algorithm(
        &self,
        requested: AlgorithmChoice,
        core_size: usize,
    ) -> AlgorithmChoice {
        match requested {
            AlgorithmChoice::Auto => {
                if core_size <= self.inner.calibration.local_core_threshold {
                    AlgorithmChoice::Global
                } else {
                    AlgorithmChoice::Local
                }
            }
            explicit => explicit,
        }
    }
}

impl MacEngine {
    /// Prepares an engine, running the measured calibration probe (one timed
    /// sweep + one timed multi-seed walk) when the network carries a G-tree
    /// index. Build cost is one probe — milliseconds on laptop-scale
    /// networks — plus the user-target grouping.
    pub fn build(rsn: RoadSocialNetwork) -> Self {
        Self::assemble(rsn, true, ExecutionPolicy::default())
    }

    /// Prepares an engine **without** the timed probe: the `Auto` cost model
    /// keeps its analytic constants (and [`apply_updates`](Self::apply_updates)
    /// never re-probes). Deterministic-build escape hatch for tests and
    /// reproducible benchmarks.
    pub fn build_uncalibrated(rsn: RoadSocialNetwork) -> Self {
        Self::assemble(rsn, false, ExecutionPolicy::default())
    }

    /// Prepares an engine (calibration probe included) under an explicit
    /// [`ExecutionPolicy`]: every [`session`](Self::session) opened from this
    /// engine — or any clone — starts from `policy` instead of the default.
    pub fn build_with_policy(rsn: RoadSocialNetwork, policy: ExecutionPolicy) -> Self {
        Self::assemble(rsn, true, policy)
    }

    /// [`build_uncalibrated`](Self::build_uncalibrated) under an explicit
    /// [`ExecutionPolicy`].
    pub fn build_uncalibrated_with_policy(rsn: RoadSocialNetwork, policy: ExecutionPolicy) -> Self {
        Self::assemble(rsn, false, policy)
    }

    fn assemble(rsn: RoadSocialNetwork, measure: bool, policy: ExecutionPolicy) -> Self {
        let user_targets = rsn
            .gtree()
            .map(|tree| group_user_targets(tree, rsn.road(), rsn.locations()));
        let mut calibration = EngineCalibration::default();
        let mut calibrated_avg_edge_weight = 0.0;
        if measure {
            if let (Some(tree), Some(targets)) = (rsn.gtree(), user_targets.as_ref()) {
                calibration = Self::probe(&rsn, tree, targets);
                calibrated_avg_edge_weight = sampled_avg_edge_weight(rsn.road());
            }
            // The GS→LS crossover depends on the social structure, not the
            // index, so it is measured even on unindexed networks.
            if let Some(threshold) = Self::probe_crossover(&rsn, user_targets.as_ref()) {
                calibration.local_core_threshold = threshold;
            }
        }
        MacEngine {
            shared: Arc::new(EngineShared {
                current: RwLock::new(Arc::new(EngineInner {
                    rsn,
                    calibration,
                    user_targets,
                    epoch: 0,
                    calibrated_avg_edge_weight,
                    measured_build: measure,
                })),
                policy,
                update_lock: Mutex::new(()),
                #[cfg(feature = "failpoints")]
                failpoint: Mutex::new(None),
            }),
        }
    }

    /// Installs a fault-injection hook fired at each [`UpdateStage`] of every
    /// subsequent [`apply_updates`](Self::apply_updates) call (through any
    /// clone of this engine). The hook may return an error — or panic — to
    /// simulate a fault at that stage; either way the served epoch must stay
    /// consistent. Test-only, behind the `failpoints` feature.
    #[cfg(feature = "failpoints")]
    pub fn set_failpoint<F>(&self, hook: F)
    where
        F: Fn(UpdateStage) -> Result<(), MacError> + Send + Sync + 'static,
    {
        let installed: FailpointHook = Arc::new(hook);
        match self.shared.failpoint.lock() {
            Ok(mut guard) => *guard = Some(installed),
            Err(poisoned) => *poisoned.into_inner() = Some(installed),
        }
    }

    /// Removes the installed fault-injection hook, if any.
    #[cfg(feature = "failpoints")]
    pub fn clear_failpoint(&self) {
        match self.shared.failpoint.lock() {
            Ok(mut guard) => *guard = None,
            Err(poisoned) => *poisoned.into_inner() = None,
        }
    }

    /// The build-time calibration probe: times one t-bounded sweep and one
    /// multi-seed walk over the same probe query (the first few user
    /// locations, threshold ≈ [`PROBE_HOP_RADIUS`] average edge weights),
    /// divides each by its modeled unit count, and accepts the measured
    /// ratio when both timings clear the noise floor
    /// ([`AutoCalibration::from_probe`]).
    fn probe(
        rsn: &RoadSocialNetwork,
        tree: &rsn_road::gtree::GTree,
        targets: &LeafTargets,
    ) -> EngineCalibration {
        let mut calibration = EngineCalibration::default();
        let users = rsn.locations();
        if users.is_empty() || rsn.road().num_vertices() == 0 {
            return calibration;
        }
        let q_locs: Vec<Location> = users
            .iter()
            .copied()
            .take(PROBE_QUERY_LOCATIONS.min(users.len()))
            .collect();
        // The same deterministic sample the cost model turns t into a hop
        // radius with, so the probe threshold and the unit estimates agree.
        let avg_w = sampled_avg_edge_weight(rsn.road());
        if !(avg_w.is_finite() && avg_w > 0.0) {
            return calibration;
        }
        let probe_t = avg_w * PROBE_HOP_RADIUS;
        let Some((sweep_units, batched_units)) =
            auto_cost_estimates(rsn.road(), tree, q_locs.len(), probe_t, users.len())
        else {
            return calibration;
        };

        let mut scratch = FilterScratch::new();
        let mut out = Vec::new();
        let mut time_filter = |filter: &RangeFilter<'_>| {
            // Best of two repetitions: the first run grows the scratch
            // buffers, the second measures the steady state.
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                let start = Instant::now();
                filter.users_within_with(
                    rsn.road(),
                    &q_locs,
                    probe_t,
                    users,
                    Some(targets),
                    &mut scratch,
                    &mut out,
                );
                best = best.min(start.elapsed().as_secs_f64());
            }
            best
        };
        let sweep_seconds = time_filter(&RangeFilter::DijkstraSweep);
        let walk_seconds = time_filter(&RangeFilter::GTreeMultiSeedBatched(tree));
        calibration.filter =
            AutoCalibration::from_probe(sweep_seconds, sweep_units, walk_seconds, batched_units);
        calibration.sweep_probe_seconds = sweep_seconds;
        calibration.walk_probe_seconds = walk_seconds;
        calibration.probe_t = probe_t;
        calibration
    }

    /// The build-time GS→LS crossover probe. Builds one probe query (the
    /// best-connected user, `k = 2`, threshold ≈ [`PROBE_HOP_RADIUS`] average
    /// edge weights, the full preference region), runs the exact global
    /// search and the local framework on the same context (best of two each),
    /// and extrapolates the core size where they break even: the global
    /// search's arrangement work is super-linear in the core while the local
    /// framework's is roughly linear, so if the global run takes `g` seconds
    /// and the local run `l` seconds on a core of `c` users, the modelled
    /// crossover is `c · l / g`, clamped to [`CROSSOVER_THRESHOLD_BOUNDS`].
    ///
    /// Returns `None` — keep [`DEFAULT_LOCAL_CORE_THRESHOLD`] — whenever the
    /// measurement cannot be trusted: no users, degenerate weights, a probe
    /// core outside [`CROSSOVER_PROBE_CORE_RANGE`], a timing under the noise
    /// floor, or the [`CROSSOVER_PROBE_DEADLINE`] exhausted anywhere along
    /// the way (the whole probe — extraction attempts, context build, and
    /// all four timed runs — shares one deadline-armed ticker, so a slow
    /// machine or a pathological network can never stall an engine build).
    fn probe_crossover(rsn: &RoadSocialNetwork, targets: Option<&LeafTargets>) -> Option<usize> {
        if rsn.num_users() == 0 || rsn.road().num_vertices() == 0 || rsn.attribute_dim() < 2 {
            return None;
        }
        let avg_w = sampled_avg_edge_weight(rsn.road());
        if !(avg_w.is_finite() && avg_w > 0.0) {
            return None;
        }
        let seed = (0..rsn.num_users() as VertexId).max_by_key(|&v| rsn.social().degree(v))?;
        // A paper-scale preference region (Table III uses sigma as a small
        // fraction of the axis): the arrangement work of both searches grows
        // steeply with the region, and serving queries use narrow regions —
        // probing with the full domain would time a workload nobody runs.
        let center = WeightVector::uniform(rsn.attribute_dim()).ok()?;
        let region = PrefRegion::around(&center, 0.05).ok()?;
        let budget = QueryBudget::new().with_deadline(CROSSOVER_PROBE_DEADLINE);
        let mut ticker = budget.arm();
        let mut scratch = ContextScratch::new();
        let (core_floor, core_ceiling) = CROSSOVER_PROBE_CORE_RANGE;
        let mut probe_t = avg_w * PROBE_HOP_RADIUS;
        for _attempt in 0..CROSSOVER_PROBE_ATTEMPTS {
            let query = MacQuery::new(vec![seed], 2, probe_t, region.clone());
            // Size the anchor core with the extraction alone first: the full
            // context build adds an O(core²) r-dominance graph, far too
            // expensive to pay just to learn the core is oversized.
            let core = match crate::ktcore::maximal_kt_core_budgeted(
                rsn,
                &query,
                RangeFilterChoice::DijkstraSweep,
                targets,
                &mut scratch.kt,
                &mut ticker,
            ) {
                Ok(KtOutcome::Core(core)) => core.vertices.len(),
                Ok(KtOutcome::Empty) | Ok(KtOutcome::Exhausted(_)) | Err(_) => return None,
            };
            if core > core_ceiling {
                // Too expensive to time the exact search here; tighten the
                // distance threshold to shrink the anchor core.
                probe_t *= 0.7;
                continue;
            }
            if core < core_floor {
                return None;
            }
            let ctx = match SearchContext::build_budgeted(
                rsn,
                &query,
                RangeFilterChoice::DijkstraSweep,
                targets,
                &mut scratch,
                &mut ticker,
            ) {
                Ok(BuildOutcome::Ready(ctx)) => ctx,
                Ok(BuildOutcome::Empty) | Ok(BuildOutcome::Exhausted(_)) | Err(_) => return None,
            };
            // Best of two repetitions, like the filter probe: the first run
            // warms caches, the second measures the steady state. Both sides
            // run the budgeted paths, so the polling overhead cancels out of
            // the ratio and a tripped deadline abandons the probe instead of
            // reporting a truncated (meaningless) timing.
            let mut time = |run: &mut dyn FnMut(&mut BudgetTicker) -> bool| {
                let mut best = f64::INFINITY;
                for _ in 0..2 {
                    let start = Instant::now();
                    if !run(&mut ticker) {
                        return None;
                    }
                    best = best.min(start.elapsed().as_secs_f64());
                }
                Some(best)
            };
            let mut gs_scratch = GsScratch::new();
            let global_seconds = time(&mut |ticker| {
                GlobalSearch::explore_context_budgeted(
                    &ctx,
                    &mut gs_scratch,
                    GsOptions::default(),
                    false,
                    ticker,
                )
                .completed
            })?;
            // The session's default expansion knobs, so the measured cost is
            // the cost Auto-routed queries will actually pay.
            let local_seconds = time(&mut |ticker| {
                LocalSearch::run_context_budgeted(
                    &ctx,
                    ExpandStrategy::default(),
                    12,
                    false,
                    ticker,
                )
                .completed
            })?;
            if global_seconds < CROSSOVER_NOISE_FLOOR || local_seconds < CROSSOVER_NOISE_FLOOR {
                return None;
            }
            let (lo, hi) = CROSSOVER_THRESHOLD_BOUNDS;
            return Some(((core as f64 * (local_seconds / global_seconds)) as usize).clamp(lo, hi));
        }
        None
    }

    /// Pins the epoch currently being served: one brief read lock, one `Arc`
    /// clone. All state accessors live on the returned [`EngineEpoch`] so a
    /// caller reads a consistent snapshot even while updates land.
    pub fn epoch(&self) -> EngineEpoch {
        EngineEpoch {
            inner: self.shared.read_current(),
        }
    }

    /// What the engine measured (or assumed) for the current epoch.
    pub fn calibration(&self) -> EngineCalibration {
        *self.epoch().calibration()
    }

    /// The engine-level [`ExecutionPolicy`] every session starts from.
    pub fn policy(&self) -> &ExecutionPolicy {
        &self.shared.policy
    }

    /// Opens a per-thread serving session holding all reusable query
    /// scratch. The session starts from the engine's [`ExecutionPolicy`]
    /// (see [`policy`](Self::policy)); override it per session with
    /// [`QuerySession::with_policy`].
    pub fn session(&self) -> QuerySession {
        QuerySession::new(self.clone())
    }

    /// Resolves a query's range-filter strategy through the current epoch
    /// (see [`EngineEpoch::resolve_filter`]).
    pub fn resolve_filter(&self, query: &MacQuery) -> RangeFilterChoice {
        self.epoch().resolve_filter(query)
    }

    /// Resolves an [`AlgorithmChoice`] through the current epoch (see
    /// [`EngineEpoch::resolve_algorithm`]). Never returns `Auto`.
    pub fn resolve_algorithm(
        &self,
        requested: AlgorithmChoice,
        core_size: usize,
    ) -> AlgorithmChoice {
        self.epoch().resolve_algorithm(requested, core_size)
    }

    /// Applies a batch of network changes **without rebuilding**: copies the
    /// current epoch, patches the copy incrementally, and swaps it in as the
    /// next epoch. All-or-nothing — an invalid entry (missing edge, bad
    /// weight, an on-edge user stranded past its edge's new length, an
    /// out-of-range user, an invalid location) rejects the delta and the
    /// served epoch is unchanged.
    ///
    /// Incremental work per delta:
    /// * road edge weights are patched in place;
    /// * the G-tree recomputes only the matrices of nodes whose region
    ///   contains both endpoints of a reweighted edge, climbing toward the
    ///   root only while a recomputed matrix actually changed
    ///   ([`GTree::apply_edge_updates`](rsn_road::gtree::GTree::apply_edge_updates));
    /// * the pre-grouped per-leaf user rows are edited for exactly the moved
    ///   users and the on-edge users of reweighted segments;
    /// * the calibration probe re-runs only when the sampled average edge
    ///   weight drifted past [`RECALIBRATION_DRIFT`] (measured builds only).
    ///
    /// Sessions (and engine clones) observe the new epoch from their next
    /// query; queries already executing finish on the epoch they pinned.
    /// An empty delta is a no-op: no copy is made and the epoch id does not
    /// advance.
    pub fn apply_updates(&self, delta: &NetworkDelta) -> Result<UpdateStats, MacError> {
        let start = Instant::now();
        let _serialize = self.shared.lock_updates();
        let prev: Arc<EngineInner> = self.shared.read_current();
        if delta.is_empty() {
            return Ok(UpdateStats {
                epoch: prev.epoch,
                elapsed_seconds: start.elapsed().as_secs_f64(),
                ..UpdateStats::default()
            });
        }

        self.shared.fire_failpoint(UpdateStage::Validate)?;
        Self::validate_delta(&prev.rsn, delta)?;

        // Copy-on-write: patch a private copy; on any error it is dropped
        // and the served epoch stays live.
        let mut rsn = prev.rsn.clone();
        let mut user_targets = prev.user_targets.clone();
        let mut stats = UpdateStats {
            epoch: prev.epoch + 1,
            edges_reweighted: delta.edge_updates.len(),
            users_moved: delta.user_moves.len(),
            ..UpdateStats::default()
        };

        let mut users_on_reweighted_edges = Vec::new();
        if !delta.edge_updates.is_empty() {
            self.shared.fire_failpoint(UpdateStage::GTreeRefresh)?;
            let outcome = rsn.apply_edge_updates(&delta.edge_updates)?;
            stats.gtree = outcome.gtree;
            users_on_reweighted_edges = outcome.users_on_reweighted_edges;
        }

        self.shared.fire_failpoint(UpdateStage::LeafEdits)?;
        // On-edge users of reweighted segments carry a stale far-endpoint
        // seed offset (w - offset): refresh their grouped rows.
        if let (Some(tree), Some(targets)) = (rsn.gtree(), user_targets.as_mut()) {
            for &user in &users_on_reweighted_edges {
                let loc = *rsn.location(user);
                remove_user_target(tree, rsn.road(), targets, user, &loc);
                add_user_target(tree, rsn.road(), targets, user, &loc);
                stats.user_targets_refreshed += 1;
            }
        }

        for (index, &(user, location)) in delta.user_moves.iter().enumerate() {
            // Location validity depends on the post-reweight weights (the
            // documented sequential semantics), so it is checked here rather
            // than in the up-front validation — still all-or-nothing, since
            // only the private copy has been touched.
            let old =
                rsn.set_user_location(user, location)
                    .map_err(|cause| MacError::DeltaRejected {
                        index,
                        entry: DeltaEntry::UserMove { user },
                        cause: Box::new(cause),
                    })?;
            if let (Some(tree), Some(targets)) = (rsn.gtree(), user_targets.as_mut()) {
                remove_user_target(tree, rsn.road(), targets, user, &old);
                add_user_target(tree, rsn.road(), targets, user, &location);
                stats.user_targets_refreshed += 1;
            }
        }

        // Drift-gated recalibration: the cost model's only weight-dependent
        // input is the sampled average edge weight; re-probe when it moved.
        self.shared.fire_failpoint(UpdateStage::Recalibrate)?;
        let mut calibration = prev.calibration;
        let mut calibrated_avg_edge_weight = prev.calibrated_avg_edge_weight;
        if prev.measured_build && !delta.edge_updates.is_empty() {
            if let (Some(tree), Some(targets)) = (rsn.gtree(), user_targets.as_ref()) {
                let avg_w = sampled_avg_edge_weight(rsn.road());
                let reference = prev.calibrated_avg_edge_weight;
                let drifted = if reference > 0.0 {
                    ((avg_w - reference) / reference).abs() > RECALIBRATION_DRIFT
                } else {
                    true
                };
                if drifted {
                    // The GS→LS crossover is a property of the social
                    // structure and the machine, neither of which a delta
                    // can change (topology is fixed): keep the build-time
                    // measurement instead of paying the probe again.
                    let threshold = calibration.local_core_threshold;
                    calibration = Self::probe(&rsn, tree, targets);
                    calibration.local_core_threshold = threshold;
                    calibrated_avg_edge_weight = avg_w;
                    stats.recalibrated = true;
                }
            }
        }

        let next = Arc::new(EngineInner {
            rsn,
            calibration,
            user_targets,
            epoch: prev.epoch + 1,
            calibrated_avg_edge_weight,
            measured_build: prev.measured_build,
        });
        {
            let mut guard = match self.shared.current.write() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            // Fired while holding the write guard: an injected panic here
            // poisons the lock with the *previous* epoch still in place —
            // exactly the torn state the poison-recovering accessors must
            // keep serving through.
            self.shared.fire_failpoint(UpdateStage::Swap)?;
            *guard = next;
        }
        stats.elapsed_seconds = start.elapsed().as_secs_f64();
        Ok(stats)
    }

    /// Validates a delta's edge updates against the served network before any
    /// mutation, attributing every rejection to its batch entry
    /// ([`MacError::DeltaRejected`] names the edge/user and index): endpoint
    /// range, edge existence, weight validity, and the stranded-on-edge-user
    /// check against the final (last-update-wins) weights. User moves are
    /// range-checked here; their location validity is checked at apply time
    /// against the post-reweight weights (same attribution).
    fn validate_delta(rsn: &RoadSocialNetwork, delta: &NetworkDelta) -> Result<(), MacError> {
        use rsn_road::RoadError;
        let road = rsn.road();
        let num_vertices = road.num_vertices();
        let canonical = |a: u32, b: u32| if a < b { (a, b) } else { (b, a) };
        // Last update of an edge wins; remember which entry set it so the
        // stranded check can name the culprit.
        let mut final_weight: std::collections::HashMap<(u32, u32), (f64, usize)> =
            std::collections::HashMap::new();
        for (index, upd) in delta.edge_updates.iter().enumerate() {
            let reject = |cause: MacError| MacError::DeltaRejected {
                index,
                entry: DeltaEntry::EdgeUpdate { u: upd.u, v: upd.v },
                cause: Box::new(cause),
            };
            for endpoint in [upd.u, upd.v] {
                if (endpoint as usize) >= num_vertices {
                    return Err(reject(MacError::Road(RoadError::VertexOutOfRange {
                        vertex: endpoint,
                        num_vertices,
                    })));
                }
            }
            if road.edge_weight(upd.u, upd.v).is_none() {
                return Err(reject(MacError::Road(RoadError::NoSuchEdge {
                    u: upd.u,
                    v: upd.v,
                })));
            }
            if !(upd.weight.is_finite() && upd.weight >= 0.0) {
                return Err(reject(MacError::Road(RoadError::InvalidWeight(upd.weight))));
            }
            final_weight.insert(canonical(upd.u, upd.v), (upd.weight, index));
        }
        for (user, loc) in rsn.locations().iter().enumerate() {
            if let Location::OnEdge { u, v, offset } = *loc {
                if let Some(&(w, index)) = final_weight.get(&canonical(u, v)) {
                    if offset > w {
                        let upd = &delta.edge_updates[index];
                        return Err(MacError::DeltaRejected {
                            index,
                            entry: DeltaEntry::EdgeUpdate { u: upd.u, v: upd.v },
                            cause: Box::new(MacError::StrandedOnEdgeUser {
                                user: user as VertexId,
                                offset,
                                new_length: w,
                            }),
                        });
                    }
                }
            }
        }
        for (index, &(user, _)) in delta.user_moves.iter().enumerate() {
            if (user as usize) >= rsn.num_users() {
                return Err(MacError::DeltaRejected {
                    index,
                    entry: DeltaEntry::UserMove { user },
                    cause: Box::new(MacError::QueryVertexOutOfRange {
                        vertex: user,
                        num_vertices: rsn.num_users(),
                    }),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_geom::region::PrefRegion;
    use rsn_graph::graph::Graph;
    use rsn_road::network::RoadNetwork;

    fn network(indexed: bool) -> RoadSocialNetwork {
        let social =
            Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        let road = RoadNetwork::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 10.0)]);
        let locations = vec![
            Location::vertex(0),
            Location::vertex(0),
            Location::vertex(1),
            Location::vertex(3),
            Location::vertex(3),
            Location::vertex(3),
        ];
        let attrs = vec![vec![1.0, 1.0]; 6];
        let rsn = RoadSocialNetwork::new(social, road, locations, attrs).unwrap();
        if indexed {
            rsn.with_gtree_index_capacity(4)
        } else {
            rsn
        }
    }

    fn query() -> MacQuery {
        let region = PrefRegion::from_ranges(&[(0.2, 0.4)]).unwrap();
        MacQuery::new(vec![0], 2, 2.0, region)
    }

    #[test]
    fn engine_clones_share_the_network_and_see_updates() {
        let engine = MacEngine::build_uncalibrated(network(true));
        let clone = engine.clone();
        let (a, b) = (engine.epoch(), clone.epoch());
        assert!(std::ptr::eq(a.network(), b.network()));
        assert!(a.user_targets().is_some());
        assert_eq!(a.id(), 0);
        // An update through one clone is the other's next epoch.
        let stats = clone
            .apply_updates(&NetworkDelta::new().reweight_edge(0, 1, 4.0))
            .unwrap();
        assert_eq!(stats.epoch, 1);
        assert_eq!(engine.epoch().id(), 1);
        assert_eq!(engine.epoch().network().road().edge_weight(0, 1), Some(4.0));
        // The pinned old epoch still reads the old weight.
        assert_eq!(a.network().road().edge_weight(0, 1), Some(1.0));
    }

    #[test]
    fn unindexed_engine_has_no_targets_and_sweeps() {
        let engine = MacEngine::build(network(false));
        assert!(engine.epoch().user_targets().is_none());
        assert!(!engine.calibration().is_measured());
        assert_eq!(
            engine.resolve_filter(&query()),
            RangeFilterChoice::DijkstraSweep
        );
    }

    #[test]
    fn measured_calibration_stays_in_trusted_bounds() {
        use rsn_road::rangefilter::AUTO_SWEEP_CELL_COST_BOUNDS;
        let engine = MacEngine::build(network(true));
        let c = engine.calibration().filter.sweep_cell_cost;
        let (lo, hi) = AUTO_SWEEP_CELL_COST_BOUNDS;
        assert!(
            (lo..=hi).contains(&c),
            "measured constant {c} outside trusted bounds"
        );
    }

    #[test]
    fn filter_resolution_layers_query_over_policy_default() {
        let engine = MacEngine::build_uncalibrated(network(true));
        let epoch = engine.epoch();
        // A query-level Auto adopts the policy-level default.
        let q = query();
        assert_eq!(
            epoch.resolve_filter_with(&q, RangeFilterChoice::GTreePoint),
            RangeFilterChoice::GTreePoint
        );
        // An explicit query filter always wins over the policy default.
        let q2 = query().with_range_filter(RangeFilterChoice::DijkstraSweep);
        assert_eq!(
            epoch.resolve_filter_with(&q2, RangeFilterChoice::GTreePoint),
            RangeFilterChoice::DijkstraSweep
        );
        // Auto all the way down falls through to the calibrated rule.
        assert_eq!(
            epoch.resolve_filter_with(&q, RangeFilterChoice::Auto),
            engine.resolve_filter(&q)
        );
    }

    #[test]
    fn algorithm_auto_switches_on_core_size() {
        let engine = MacEngine::build_uncalibrated(network(true));
        let thr = engine.calibration().local_core_threshold;
        assert_eq!(
            engine.resolve_algorithm(AlgorithmChoice::Auto, thr),
            AlgorithmChoice::Global
        );
        assert_eq!(
            engine.resolve_algorithm(AlgorithmChoice::Auto, thr + 1),
            AlgorithmChoice::Local
        );
        assert_eq!(
            engine.resolve_algorithm(AlgorithmChoice::Local, 1),
            AlgorithmChoice::Local
        );
        assert_eq!(
            engine.resolve_algorithm(AlgorithmChoice::Global, usize::MAX),
            AlgorithmChoice::Global
        );
    }

    /// 64 users whose circulant social graph (degree 4 everywhere) survives
    /// the `k = 2` peel intact and whose locations all sit well inside the
    /// probe radius: the crossover probe gets a core above its trust floor.
    fn probeable_network() -> RoadSocialNetwork {
        let n: u32 = 64;
        let mut social_edges = Vec::new();
        for i in 0..n {
            social_edges.push((i, (i + 1) % n));
            social_edges.push((i, (i + 2) % n));
        }
        let social = Graph::from_edges(n as usize, &social_edges);
        let road_edges: Vec<(u32, u32, f64)> = (0..7).map(|i| (i, i + 1, 1.0)).collect();
        let road = RoadNetwork::from_edges(8, &road_edges);
        let locations = (0..n).map(|i| Location::vertex(i % 8)).collect();
        let attrs = (0..n)
            .map(|i| vec![(i % 10) as f64 / 10.0, 1.0 - (i % 10) as f64 / 10.0])
            .collect();
        RoadSocialNetwork::new(social, road, locations, attrs).unwrap()
    }

    #[test]
    fn measured_build_probes_the_algorithm_crossover() {
        let engine = MacEngine::build(probeable_network());
        let thr = engine.calibration().local_core_threshold;
        let (lo, hi) = CROSSOVER_THRESHOLD_BOUNDS;
        assert!(
            (lo..=hi).contains(&thr),
            "crossover threshold {thr} escaped the clamp [{lo}, {hi}]"
        );
        // Routing pins that hold whatever the probe timings were: cores under
        // the clamp floor stay on the exact global search, cores above the
        // clamp ceiling always go to the local framework.
        assert_eq!(
            engine.resolve_algorithm(AlgorithmChoice::Auto, lo - 1),
            AlgorithmChoice::Global
        );
        assert_eq!(
            engine.resolve_algorithm(AlgorithmChoice::Auto, hi + 1),
            AlgorithmChoice::Local
        );
    }

    #[test]
    fn uncalibrated_and_tiny_networks_keep_the_default_crossover() {
        // Deterministic builds never time anything.
        let engine = MacEngine::build_uncalibrated(probeable_network());
        assert_eq!(
            engine.calibration().local_core_threshold,
            DEFAULT_LOCAL_CORE_THRESHOLD
        );
        // Six users is under the probe-core trust floor: the measurement is
        // rejected and the analytic default survives a measured build.
        let engine = MacEngine::build(network(true));
        assert_eq!(
            engine.calibration().local_core_threshold,
            DEFAULT_LOCAL_CORE_THRESHOLD
        );
    }

    #[test]
    fn rejected_delta_leaves_the_served_epoch_unchanged() {
        let engine = MacEngine::build_uncalibrated(network(true));
        // Edge (0, 2) does not exist; the batch also carries a valid entry
        // that must NOT land.
        let delta = NetworkDelta::new()
            .reweight_edge(0, 1, 9.0)
            .reweight_edge(0, 2, 1.0);
        assert!(engine.apply_updates(&delta).is_err());
        let epoch = engine.epoch();
        assert_eq!(epoch.id(), 0);
        assert_eq!(epoch.network().road().edge_weight(0, 1), Some(1.0));
        // Same for an invalid user move after a valid edge update.
        let delta = NetworkDelta::new()
            .reweight_edge(0, 1, 9.0)
            .move_user(99, Location::vertex(0));
        assert!(engine.apply_updates(&delta).is_err());
        assert_eq!(engine.epoch().id(), 0);
        assert_eq!(engine.epoch().network().road().edge_weight(0, 1), Some(1.0));
    }

    #[test]
    fn updates_refresh_user_targets_incrementally() {
        let engine = MacEngine::build_uncalibrated(network(true));
        let delta = NetworkDelta::new().move_user(0, Location::vertex(2));
        let stats = engine.apply_updates(&delta).unwrap();
        assert_eq!(stats.users_moved, 1);
        assert_eq!(stats.user_targets_refreshed, 1);
        let epoch = engine.epoch();
        assert_eq!(epoch.network().location(0), &Location::vertex(2));
        // The maintained grouping equals a from-scratch regrouping.
        let regrouped = group_user_targets(
            epoch.network().gtree().unwrap(),
            epoch.network().road(),
            epoch.network().locations(),
        );
        assert_eq!(
            epoch.user_targets().unwrap().num_seeds(),
            regrouped.num_seeds()
        );
    }

    #[test]
    fn deltas_apply_reweights_before_moves() {
        // Pin of the documented sequential semantics: shrinking a segment
        // below a resident on-edge user's offset rejects the delta even when
        // a later move in the same delta takes the user elsewhere — the
        // moves must come as their own delta first.
        let social = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let road = RoadNetwork::from_edges(3, &[(0, 1, 5.0), (1, 2, 1.0)]);
        let locations = vec![
            Location::OnEdge {
                u: 0,
                v: 1,
                offset: 3.0,
            },
            Location::vertex(1),
            Location::vertex(2),
        ];
        let attrs = vec![vec![1.0]; 3];
        let rsn = RoadSocialNetwork::new(social, road, locations, attrs)
            .unwrap()
            .with_gtree_index_capacity(4);
        let engine = MacEngine::build_uncalibrated(rsn);
        let combined = NetworkDelta::new()
            .reweight_edge(0, 1, 1.0)
            .move_user(0, Location::vertex(2));
        assert!(engine.apply_updates(&combined).is_err());
        assert_eq!(engine.epoch().id(), 0);
        // Split into moves-first deltas, the same end state is reachable.
        engine
            .apply_updates(&NetworkDelta::new().move_user(0, Location::vertex(2)))
            .unwrap();
        engine
            .apply_updates(&NetworkDelta::new().reweight_edge(0, 1, 1.0))
            .unwrap();
        let epoch = engine.epoch();
        assert_eq!(epoch.id(), 2);
        assert_eq!(epoch.network().location(0), &Location::vertex(2));
        assert_eq!(epoch.network().road().edge_weight(0, 1), Some(1.0));
    }

    #[test]
    fn empty_delta_is_a_no_op() {
        let engine = MacEngine::build_uncalibrated(network(true));
        let stats = engine.apply_updates(&NetworkDelta::new()).unwrap();
        assert_eq!(stats.epoch, 0, "empty delta must not advance the epoch");
        assert_eq!(engine.epoch().id(), 0);
        // And after a real update, still no advance on empty.
        engine
            .apply_updates(&NetworkDelta::new().reweight_edge(0, 1, 2.0))
            .unwrap();
        let stats = engine.apply_updates(&NetworkDelta::new()).unwrap();
        assert_eq!(stats.epoch, 1);
        assert_eq!(engine.epoch().id(), 1);
    }

    #[test]
    fn non_normalized_on_edge_users_are_refreshed_and_guarded() {
        // Location::OnEdge's fields are public, so a location may store its
        // endpoints in either order; reweight matching must canonicalize.
        let social = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let road = RoadNetwork::from_edges(3, &[(0, 1, 2.0), (1, 2, 2.0)]);
        let locations = vec![
            Location::vertex(0),
            Location::OnEdge {
                u: 2,
                v: 1,
                offset: 1.9,
            },
            Location::vertex(2),
        ];
        let attrs = vec![vec![1.0]; 3];
        let rsn = RoadSocialNetwork::new(social, road, locations, attrs)
            .unwrap()
            .with_gtree_index_capacity(4);
        let engine = MacEngine::build_uncalibrated(rsn);
        // Shrinking the edge below the stored offset must reject the delta
        // even though the update names the edge in canonical order.
        let err = engine.apply_updates(&NetworkDelta::new().reweight_edge(1, 2, 1.0));
        assert!(err.is_err(), "stranded non-normalized offset must reject");
        assert_eq!(engine.epoch().id(), 0);
        // A valid reweight must refresh the user's grouped seeds (the
        // far-endpoint offset changed with the weight).
        let stats = engine
            .apply_updates(&NetworkDelta::new().reweight_edge(1, 2, 4.0))
            .unwrap();
        assert_eq!(stats.user_targets_refreshed, 1);
        // Behavioral pin: user 1 now sits 1.9 from vertex 2 on a 4.0-long
        // edge, i.e. 2.1 from vertex 1, so D(vertex 0, user 1) = 2.0 + 2.1.
        // A stale far-endpoint seed (2.0 - 1.9 = 0.1 from vertex 1) would
        // report 2.1 and wrongly keep the user within t = 3.
        let epoch = engine.epoch();
        let net = epoch.network();
        let mut scratch = FilterScratch::new();
        let mut within = Vec::new();
        RangeFilter::GTreeMultiSeedBatched(net.gtree().unwrap()).users_within_with(
            net.road(),
            &[Location::vertex(0)],
            3.0,
            net.locations(),
            epoch.user_targets(),
            &mut scratch,
            &mut within,
        );
        assert_eq!(
            within,
            vec![true, false, false],
            "refreshed seeds must exclude the now-distant on-edge user"
        );
    }

    #[test]
    fn poisoned_locks_do_not_brick_the_engine() {
        // A thread panicking while holding the epoch write lock (and the
        // update mutex) poisons both. The epoch pointer is only ever stored
        // whole under the write lock, so the poisoned locks still guard a
        // consistent epoch — the engine must recover and keep serving.
        let engine = MacEngine::build_uncalibrated(network(true));
        let shared = Arc::clone(&engine.shared);
        let panicked = std::thread::spawn(move || {
            let _updates = shared.update_lock.lock().unwrap();
            let _guard = shared.current.write().unwrap();
            panic!("injected panic while holding engine locks");
        })
        .join();
        assert!(panicked.is_err(), "the poisoning thread must have panicked");
        assert!(engine.shared.current.is_poisoned(), "write lock poisoned");
        // Reads recover.
        let epoch = engine.epoch();
        assert_eq!(epoch.id(), 0);
        assert_eq!(epoch.network().road().edge_weight(0, 1), Some(1.0));
        // Queries recover.
        let mut session = engine.session();
        let before = session.execute(&query()).unwrap();
        // Updates recover, land, and are served.
        let stats = engine
            .apply_updates(&NetworkDelta::new().reweight_edge(0, 1, 2.0))
            .unwrap();
        assert_eq!(stats.epoch, 1);
        assert_eq!(engine.epoch().network().road().edge_weight(0, 1), Some(2.0));
        let after = session.execute(&query()).unwrap();
        // Same communities either way on this network (the reweight keeps
        // users 0..2 within t); the point is that both queries succeeded.
        assert_eq!(before.cells.len(), after.cells.len());
    }

    #[test]
    fn delta_rejections_name_the_entry_and_its_index() {
        use crate::error::DeltaEntry;
        let engine = MacEngine::build_uncalibrated(network(true));
        // Missing edge at index 1.
        let err = engine
            .apply_updates(
                &NetworkDelta::new()
                    .reweight_edge(0, 1, 2.0)
                    .reweight_edge(0, 2, 1.0),
            )
            .unwrap_err();
        match &err {
            MacError::DeltaRejected { index, entry, .. } => {
                assert_eq!(*index, 1);
                assert_eq!(*entry, DeltaEntry::EdgeUpdate { u: 0, v: 2 });
            }
            other => panic!("expected DeltaRejected, got {other:?}"),
        }
        assert_eq!(
            err.to_string(),
            "delta rejected: edge_updates[1] (segment 0-2): road network error: no road edge between 0 and 2"
        );
        // Invalid weight names its entry.
        let err = engine
            .apply_updates(&NetworkDelta::new().reweight_edge(1, 2, f64::NAN))
            .unwrap_err();
        assert!(err
            .to_string()
            .starts_with("delta rejected: edge_updates[0] (segment 1-2):"));
        // Out-of-range user move at index 1 (after a valid move).
        let err = engine
            .apply_updates(
                &NetworkDelta::new()
                    .move_user(0, Location::vertex(1))
                    .move_user(99, Location::vertex(0)),
            )
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "delta rejected: user_moves[1] (user 99): query vertex 99 out of range for social network with 6 users"
        );
        // Nothing landed.
        assert_eq!(engine.epoch().id(), 0);
        assert_eq!(engine.epoch().network().location(0), &Location::vertex(0));
    }

    #[test]
    fn stranded_user_rejection_names_user_and_culprit_update() {
        let social = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let road = RoadNetwork::from_edges(3, &[(0, 1, 5.0), (1, 2, 1.0)]);
        let locations = vec![
            Location::OnEdge {
                u: 0,
                v: 1,
                offset: 3.0,
            },
            Location::vertex(1),
            Location::vertex(2),
        ];
        let attrs = vec![vec![1.0]; 3];
        let rsn = RoadSocialNetwork::new(social, road, locations, attrs).unwrap();
        let engine = MacEngine::build_uncalibrated(rsn);
        // Last update of the edge wins: the first shrink would strand, the
        // second (index 1) is the one that counts and it also strands.
        let err = engine
            .apply_updates(
                &NetworkDelta::new()
                    .reweight_edge(0, 1, 1.0)
                    .reweight_edge(1, 0, 2.0),
            )
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "delta rejected: edge_updates[1] (segment 1-0): on-edge user 0 at offset 3 would be stranded: edge shrinks to 2"
        );
        // And a growing final update un-strands: the delta applies.
        engine
            .apply_updates(
                &NetworkDelta::new()
                    .reweight_edge(0, 1, 1.0)
                    .reweight_edge(0, 1, 6.0),
            )
            .unwrap();
        assert_eq!(engine.epoch().network().road().edge_weight(0, 1), Some(6.0));
    }

    #[test]
    fn recalibration_is_drift_gated() {
        // Measured build: a tiny reweight keeps the calibration, a massive
        // uniform reweight re-probes.
        let engine = MacEngine::build(network(true));
        let small = engine
            .apply_updates(&NetworkDelta::new().reweight_edge(0, 1, 1.05))
            .unwrap();
        assert!(
            !small.recalibrated,
            "5% drift on one edge must not re-probe"
        );
        let big = engine
            .apply_updates(
                &NetworkDelta::new()
                    .reweight_edge(0, 1, 10.0)
                    .reweight_edge(1, 2, 10.0)
                    .reweight_edge(2, 3, 100.0),
            )
            .unwrap();
        assert!(big.recalibrated, "10x uniform reweight must re-probe");
        // Uncalibrated builds never probe, whatever the drift.
        let analytic = MacEngine::build_uncalibrated(network(true));
        let stats = analytic
            .apply_updates(
                &NetworkDelta::new()
                    .reweight_edge(0, 1, 10.0)
                    .reweight_edge(1, 2, 10.0)
                    .reweight_edge(2, 3, 100.0),
            )
            .unwrap();
        assert!(!stats.recalibrated);
        assert!(!analytic.calibration().is_measured());
    }
}

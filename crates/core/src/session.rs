//! Per-thread query execution with reusable scratch.
//!
//! A [`QuerySession`] is the mutable half of the serving API: it pins one
//! immutable epoch of its [`MacEngine`] per query (network, index,
//! pre-grouped user targets, calibration — see [`MacEngine::epoch`]; applied
//! [`NetworkDelta`](crate::engine::NetworkDelta)s become visible at the next
//! query, with all scratch intact) and owns every buffer a query
//! execution needs — the Dijkstra sweep scratch, the G-tree walk's
//! entry/intersection matrices, the Lemma-1 membership mask, and the
//! id-translation arrays of the context build. Executing many queries
//! through one session reaches an allocation-free steady state for all
//! network-sized structures; only the per-query core-local structures (the
//! induced (k,t)-core graph and its dominance graph, which the result
//! borrows from) are built per query.
//!
//! Sessions are deliberately `!Sync`: one session per serving thread, all
//! sharing one cloned engine. See the scoped-thread test in
//! `tests/engine_session.rs` for the intended concurrent shape.

use crate::budget::QueryBudget;
use crate::context::{BuildOutcome, ContextScratch, SearchContext};
use crate::engine::{AlgorithmChoice, MacEngine};
use crate::error::MacError;
use crate::global::GlobalSearch;
use crate::local::{ExpandStrategy, LocalSearch};
use crate::query::MacQuery;
use crate::result::{
    MacSearchResult, PartialResult, QueryOutcome, QueryPhase, QueryProgress, SearchStats,
};
use rsn_road::budget::BudgetTicker;
use rsn_road::ExhaustionCause;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// A per-thread handle executing MAC queries against a prepared engine.
///
/// Obtained from [`MacEngine::session`]. The entry points mirror the
/// one-shot wrappers: [`execute`](Self::execute) infers the problem from the
/// query's `j` (Problem 1 / top-j when `j > 1`, Problem 2 / non-contained
/// otherwise); [`execute_non_contained`](Self::execute_non_contained) and
/// [`execute_top_j`](Self::execute_top_j) select explicitly. Batch serving
/// goes through [`execute_batch`](Self::execute_batch).
#[derive(Debug)]
pub struct QuerySession {
    engine: MacEngine,
    scratch: ContextScratch,
    /// Worker threads for the global search's top-level cells (1 = serial).
    parallelism: usize,
    /// Candidate-selection strategy of the local framework.
    strategy: ExpandStrategy,
    /// Candidate budget of the local framework.
    max_candidates: usize,
    executed: u64,
    /// Test-only: makes the next query panic mid-execution, exercising the
    /// panic guard (see [`inject_panic_on_next_query`](Self::inject_panic_on_next_query)).
    #[cfg(feature = "failpoints")]
    panic_next: bool,
}

/// The outcome of one [`QuerySession::execute_batch`] call.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-query results, in input order.
    pub results: Vec<MacSearchResult>,
    /// Aggregate throughput statistics for the batch.
    pub stats: BatchStats,
}

/// Aggregate statistics of one executed batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchStats {
    /// Number of queries executed.
    pub queries: usize,
    /// Wall-clock seconds for the whole batch.
    pub elapsed_seconds: f64,
    /// Executed queries per second (0.0 for an empty batch).
    pub queries_per_second: f64,
}

/// The outcome of one [`QuerySession::execute_batch_with_budget`] call.
///
/// Unlike the all-or-nothing [`execute_batch`](QuerySession::execute_batch),
/// the budgeted batch degrades gracefully: every query gets its own slot, an
/// invalid query or a contained panic records its error in place, and the
/// batch keeps serving the remaining queries.
#[derive(Debug)]
pub struct BudgetedBatchOutcome {
    /// Per-query outcomes, in input order. `Ok` carries a
    /// [`QueryOutcome`] (complete or partial); `Err` records why that one
    /// query failed without aborting the batch.
    pub outcomes: Vec<Result<QueryOutcome, MacError>>,
    /// Aggregate throughput statistics for the batch (counts every slot,
    /// including failed ones).
    pub stats: BatchStats,
}

impl QuerySession {
    pub(crate) fn new(engine: MacEngine) -> Self {
        QuerySession {
            engine,
            scratch: ContextScratch::new(),
            parallelism: 1,
            strategy: ExpandStrategy::default(),
            max_candidates: 12,
            executed: 0,
            #[cfg(feature = "failpoints")]
            panic_next: false,
        }
    }

    /// Arms a one-shot injected panic: the next `execute*` call panics
    /// mid-execution (after the epoch is pinned, before any result exists),
    /// exercising the session's panic containment. Test-only, behind the
    /// `failpoints` feature.
    #[cfg(feature = "failpoints")]
    pub fn inject_panic_on_next_query(&mut self) {
        self.panic_next = true;
    }

    /// Fires (and disarms) the injected query panic, if armed.
    #[cfg(feature = "failpoints")]
    fn fire_query_failpoint(&mut self) {
        if std::mem::take(&mut self.panic_next) {
            panic!("injected query panic");
        }
    }

    #[cfg(not(feature = "failpoints"))]
    #[inline(always)]
    fn fire_query_failpoint(&mut self) {}

    /// Sets the number of worker threads the global search uses for
    /// independent top-level cells (`1` = serial, `0` = all cores). Serving
    /// deployments usually keep `1` and scale with one session per thread
    /// instead.
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Overrides the local framework's candidate-selection strategy.
    pub fn with_expand_strategy(mut self, strategy: ExpandStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the local framework's candidate budget (minimum 1).
    pub fn with_max_candidates(mut self, max_candidates: usize) -> Self {
        self.max_candidates = max_candidates.max(1);
        self
    }

    /// The engine this session serves from.
    pub fn engine(&self) -> &MacEngine {
        &self.engine
    }

    /// Number of queries this session has executed.
    pub fn queries_executed(&self) -> u64 {
        self.executed
    }

    /// Executes one query, resolving the algorithm and range-filter strategy
    /// through the engine's calibration. The problem is inferred from the
    /// query: top-j (Problem 1) when `j > 1`, non-contained MAC (Problem 2)
    /// otherwise — the two coincide at `j = 1`.
    pub fn execute(&mut self, query: &MacQuery) -> Result<MacSearchResult, MacError> {
        self.run_complete(query, query.j > 1)
    }

    /// Executes one query as Problem 2: the non-contained MAC per partition.
    pub fn execute_non_contained(&mut self, query: &MacQuery) -> Result<MacSearchResult, MacError> {
        self.run_complete(query, false)
    }

    /// Executes one query as Problem 1: the top-j MACs per partition.
    pub fn execute_top_j(&mut self, query: &MacQuery) -> Result<MacSearchResult, MacError> {
        self.run_complete(query, true)
    }

    /// Executes one query under a [`QueryBudget`], degrading gracefully: when
    /// the budget exhausts mid-query the session returns
    /// [`QueryOutcome::Partial`] carrying every community confirmed so far
    /// plus progress counters, instead of an error. An
    /// [unlimited](QueryBudget::is_unlimited) budget takes the exact
    /// (unbudgeted) path and always yields [`QueryOutcome::Complete`] with a
    /// result identical to [`execute`](Self::execute).
    ///
    /// The problem is inferred from the query's `j`, as in
    /// [`execute`](Self::execute). `Err` is reserved for invalid queries and
    /// contained panics — budget exhaustion is never an error here (see
    /// [`execute_with_budget_strict`](Self::execute_with_budget_strict) for
    /// the strict contract).
    pub fn execute_with_budget(
        &mut self,
        query: &MacQuery,
        budget: &QueryBudget,
    ) -> Result<QueryOutcome, MacError> {
        self.run_guarded(query, query.j > 1, Some(budget))
    }

    /// Strict variant of [`execute_with_budget`](Self::execute_with_budget):
    /// budget exhaustion is an error
    /// ([`MacError::BudgetExhausted`])
    /// instead of a partial answer. For callers that would rather retry with
    /// a bigger budget than serve a truncated result.
    pub fn execute_with_budget_strict(
        &mut self,
        query: &MacQuery,
        budget: &QueryBudget,
    ) -> Result<MacSearchResult, MacError> {
        match self.execute_with_budget(query, budget)? {
            QueryOutcome::Complete(result) => Ok(result),
            QueryOutcome::Partial(partial) => Err(MacError::BudgetExhausted(partial.cause)),
        }
    }

    /// Executes a batch of queries, arming `budget` afresh for each one
    /// (per-query deadline/work-limit; a shared cancel flag stops the whole
    /// batch cooperatively). Unlike [`execute_batch`](Self::execute_batch)
    /// this never aborts early: an invalid query or a contained panic records
    /// its error in its slot and serving continues with the next query.
    pub fn execute_batch_with_budget(
        &mut self,
        queries: &[MacQuery],
        budget: &QueryBudget,
    ) -> BudgetedBatchOutcome {
        let start = Instant::now();
        let mut outcomes = Vec::with_capacity(queries.len());
        for query in queries {
            outcomes.push(self.execute_with_budget(query, budget));
        }
        let elapsed_seconds = start.elapsed().as_secs_f64();
        let queries_per_second = if queries.is_empty() {
            0.0
        } else {
            queries.len() as f64 / elapsed_seconds.max(1e-12)
        };
        BudgetedBatchOutcome {
            outcomes,
            stats: BatchStats {
                queries: queries.len(),
                elapsed_seconds,
                queries_per_second,
            },
        }
    }

    /// Executes a batch of queries through this session's scratch, returning
    /// per-query results plus aggregate throughput statistics. Fails on the
    /// first invalid query (results computed so far are discarded, matching
    /// the all-or-nothing contract of a batch).
    pub fn execute_batch(&mut self, queries: &[MacQuery]) -> Result<BatchOutcome, MacError> {
        let start = Instant::now();
        let mut results = Vec::with_capacity(queries.len());
        for query in queries {
            results.push(self.execute(query)?);
        }
        let elapsed_seconds = start.elapsed().as_secs_f64();
        let queries_per_second = if queries.is_empty() {
            0.0
        } else {
            queries.len() as f64 / elapsed_seconds.max(1e-12)
        };
        Ok(BatchOutcome {
            results,
            stats: BatchStats {
                queries: queries.len(),
                elapsed_seconds,
                queries_per_second,
            },
        })
    }

    /// Unbudgeted entry used by the plain `execute*` family: routes through
    /// the panic guard (a contained panic surfaces as
    /// [`MacError::ExecutionPanicked`](crate::MacError::ExecutionPanicked)
    /// with the session scratch rebuilt) but never produces a partial answer.
    fn run_complete(
        &mut self,
        query: &MacQuery,
        top_j_mode: bool,
    ) -> Result<MacSearchResult, MacError> {
        match self.run_guarded(query, top_j_mode, None)? {
            QueryOutcome::Complete(result) => Ok(result),
            QueryOutcome::Partial(_) => unreachable!("unbudgeted run cannot be partial"),
        }
    }

    /// Panic-isolating wrapper around the two inner paths. A panic escaping
    /// query execution is caught here; the session's scratch may have been
    /// mid-mutation, so it is poisoned-and-rebuilt (fresh buffers, one-time
    /// re-allocation cost) and the panic is reported as a contained
    /// [`MacError::ExecutionPanicked`](crate::MacError::ExecutionPanicked).
    /// The engine's shared state is immutable per epoch, so no other session
    /// can observe the torn intermediate state.
    fn run_guarded(
        &mut self,
        query: &MacQuery,
        top_j_mode: bool,
        budget: Option<&QueryBudget>,
    ) -> Result<QueryOutcome, MacError> {
        let guarded = catch_unwind(AssertUnwindSafe(|| match budget {
            Some(budget) if !budget.is_unlimited() => {
                let mut ticker = budget.arm();
                self.run_budgeted(query, top_j_mode, &mut ticker)
            }
            _ => self
                .run_exact(query, top_j_mode)
                .map(QueryOutcome::Complete),
        }));
        match guarded {
            Ok(outcome) => outcome,
            Err(payload) => {
                // The scratch buffers may hold torn intermediate state from
                // the unwound query; rebuild them so the session stays
                // serviceable.
                self.scratch = ContextScratch::new();
                let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                Err(MacError::ExecutionPanicked(msg))
            }
        }
    }

    /// Budget-limited inner path: every pipeline stage polls the ticker, and
    /// exhaustion at any point degrades to a [`QueryOutcome::Partial`]
    /// carrying the cells confirmed so far (each exact — the budgeted stages
    /// only ever drop whole units of work, never truncate a reported cell).
    fn run_budgeted(
        &mut self,
        query: &MacQuery,
        top_j_mode: bool,
        ticker: &mut BudgetTicker,
    ) -> Result<QueryOutcome, MacError> {
        let start = Instant::now();
        let epoch = self.engine.epoch();
        self.fire_query_failpoint();
        let filter = epoch.resolve_filter(query);
        let rsn = epoch.network();
        let built = SearchContext::build_budgeted(
            rsn,
            query,
            filter,
            epoch.user_targets(),
            &mut self.scratch,
            ticker,
        )?;
        let ctx = match built {
            BuildOutcome::Ready(ctx) => ctx,
            BuildOutcome::Empty => {
                self.executed += 1;
                return Ok(QueryOutcome::Complete(Self::empty_result(start)));
            }
            BuildOutcome::Exhausted(phase) => {
                self.executed += 1;
                return Ok(QueryOutcome::Partial(PartialResult {
                    result: Self::empty_result(start),
                    cause: ticker.cause().unwrap_or(ExhaustionCause::WorkLimit),
                    progress: QueryProgress {
                        phase,
                        explored: ticker.spent(),
                        // The pipeline stopped before the search stages; at
                        // least the current stage's work is known undone.
                        remaining: 1,
                    },
                }));
            }
        };
        let algorithm = epoch.resolve_algorithm(query.algorithm, ctx.core_size());
        let (mut run, phase) = match algorithm {
            AlgorithmChoice::Local => (
                LocalSearch::run_context_budgeted(
                    &ctx,
                    self.strategy,
                    self.max_candidates,
                    top_j_mode,
                    ticker,
                ),
                QueryPhase::LocalSearch,
            ),
            // resolve_algorithm never returns Auto. Budgeted global search is
            // serial regardless of `parallelism`: the ticker is shared
            // mutable state, and a serial prefix is what makes a partial
            // answer a strict subset of the full run.
            _ => (
                GlobalSearch::explore_context_budgeted(&ctx, top_j_mode, ticker),
                QueryPhase::GlobalSearch,
            ),
        };
        run.result.stats.elapsed_seconds = start.elapsed().as_secs_f64();
        self.executed += 1;
        if run.completed {
            Ok(QueryOutcome::Complete(run.result))
        } else {
            Ok(QueryOutcome::Partial(PartialResult {
                result: run.result,
                cause: ticker.cause().unwrap_or(ExhaustionCause::WorkLimit),
                progress: QueryProgress {
                    phase,
                    explored: run.explored,
                    remaining: run.remaining,
                },
            }))
        }
    }

    fn empty_result(start: Instant) -> MacSearchResult {
        MacSearchResult {
            cells: Vec::new(),
            stats: SearchStats {
                elapsed_seconds: start.elapsed().as_secs_f64(),
                ..SearchStats::default()
            },
        }
    }

    fn run_exact(
        &mut self,
        query: &MacQuery,
        top_j_mode: bool,
    ) -> Result<MacSearchResult, MacError> {
        let start = Instant::now();
        // Pin the epoch being served: a concurrently applied NetworkDelta
        // swaps the engine's pointer but never mutates this snapshot, so the
        // whole query runs against one consistent network + index + grouping.
        let epoch = self.engine.epoch();
        self.fire_query_failpoint();
        let filter = epoch.resolve_filter(query);
        let rsn = epoch.network();
        // The context borrows the epoch's network and the caller's query;
        // everything network-sized it consumes comes from session scratch.
        let ctx =
            SearchContext::build_with(rsn, query, filter, epoch.user_targets(), &mut self.scratch)?;
        let Some(ctx) = ctx else {
            self.executed += 1;
            return Ok(MacSearchResult {
                cells: Vec::new(),
                stats: SearchStats {
                    elapsed_seconds: start.elapsed().as_secs_f64(),
                    ..SearchStats::default()
                },
            });
        };
        let algorithm = epoch.resolve_algorithm(query.algorithm, ctx.core_size());
        let mut result = match algorithm {
            AlgorithmChoice::Local => {
                LocalSearch::run_context(&ctx, self.strategy, self.max_candidates, top_j_mode)
            }
            // resolve_algorithm never returns Auto.
            _ => GlobalSearch::explore_context(&ctx, self.parallelism, top_j_mode),
        };
        result.stats.elapsed_seconds = start.elapsed().as_secs_f64();
        self.executed += 1;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RoadSocialNetwork;
    use rsn_geom::region::PrefRegion;
    use rsn_graph::graph::Graph;
    use rsn_road::network::{Location, RoadNetwork};

    /// The two-K4 network of the global/local tests.
    fn network() -> RoadSocialNetwork {
        let social = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (0, 4),
                (0, 5),
                (1, 4),
                (1, 5),
                (4, 5),
            ],
        );
        let road = RoadNetwork::from_edges(2, &[(0, 1, 1.0)]);
        let locations = vec![Location::vertex(0); 6];
        let attrs = vec![
            vec![6.0, 6.0],
            vec![6.0, 6.0],
            vec![9.0, 1.0],
            vec![8.0, 2.0],
            vec![1.0, 9.0],
            vec![2.0, 8.0],
        ];
        RoadSocialNetwork::new(social, road, locations, attrs).unwrap()
    }

    fn query() -> MacQuery {
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        MacQuery::new(vec![0, 1], 3, 10.0, region)
    }

    fn assert_results_identical(a: &MacSearchResult, b: &MacSearchResult) {
        assert_eq!(a.cells.len(), b.cells.len(), "cell count diverged");
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.sample_weight, cb.sample_weight);
            assert_eq!(
                ca.communities
                    .iter()
                    .map(|c| &c.vertices)
                    .collect::<Vec<_>>(),
                cb.communities
                    .iter()
                    .map(|c| &c.vertices)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn session_matches_one_shot_global_search() {
        let rsn = network();
        let q = query();
        let reference = crate::GlobalSearch::new(&rsn, &q)
            .run_non_contained()
            .unwrap();
        let engine = MacEngine::build_uncalibrated(rsn);
        let mut session = engine.session();
        let got = session.execute(&q).unwrap();
        assert_results_identical(&reference, &got);
        assert_eq!(session.queries_executed(), 1);
    }

    #[test]
    fn session_infers_the_problem_from_j() {
        let engine = MacEngine::build_uncalibrated(network());
        let mut session = engine.session();
        let q1 = query();
        let q2 = query().with_top_j(2);
        let nc = session.execute(&q1).unwrap();
        for cell in &nc.cells {
            assert_eq!(cell.communities.len(), 1);
        }
        let top2 = session.execute(&q2).unwrap();
        assert!(top2.cells.iter().any(|c| c.communities.len() == 2));
        let explicit = session.execute_top_j(&q2).unwrap();
        assert_results_identical(&top2, &explicit);
    }

    #[test]
    fn session_runs_the_local_framework_on_request() {
        let rsn = network();
        let q = query().with_algorithm(AlgorithmChoice::Local);
        let reference = crate::LocalSearch::new(&rsn, &q)
            .run_non_contained()
            .unwrap();
        let engine = MacEngine::build_uncalibrated(rsn);
        let mut session = engine.session();
        let got = session.execute(&q).unwrap();
        assert_results_identical(&reference, &got);
    }

    #[test]
    fn batch_matches_individual_execution_and_counts_throughput() {
        let engine = MacEngine::build_uncalibrated(network());
        let queries = vec![query(), query().with_top_j(2), query()];
        let mut individual = engine.session();
        let expect: Vec<_> = queries
            .iter()
            .map(|q| individual.execute(q).unwrap())
            .collect();
        let mut session = engine.session();
        let batch = session.execute_batch(&queries).unwrap();
        assert_eq!(batch.results.len(), 3);
        assert_eq!(batch.stats.queries, 3);
        assert!(batch.stats.queries_per_second > 0.0);
        for (a, b) in expect.iter().zip(&batch.results) {
            assert_results_identical(a, b);
        }
        assert_eq!(session.queries_executed(), 3);
    }

    #[test]
    fn invalid_query_is_an_error_and_empty_core_is_an_empty_result() {
        let engine = MacEngine::build_uncalibrated(network());
        let mut session = engine.session();
        let mut bad = query();
        bad.q.clear();
        assert!(session.execute(&bad).is_err());
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let impossible = MacQuery::new(vec![0], 5, 10.0, region);
        let result = session.execute(&impossible).unwrap();
        assert!(result.is_empty());
    }
}

//! Per-thread query execution with reusable scratch.
//!
//! A [`QuerySession`] is the mutable half of the serving API: it pins one
//! immutable epoch of its [`MacEngine`] per query (network, index,
//! pre-grouped user targets, calibration — see [`MacEngine::epoch`]; applied
//! [`NetworkDelta`](crate::engine::NetworkDelta)s become visible at the next
//! query, with all scratch intact) and owns every buffer a query
//! execution needs — the Dijkstra sweep scratch, the G-tree walk's
//! entry/intersection matrices, the Lemma-1 membership mask, and the
//! id-translation arrays of the context build. Executing many queries
//! through one session reaches an allocation-free steady state for all
//! network-sized structures; only the per-query core-local structures (the
//! induced (k,t)-core graph and its dominance graph, which the result
//! borrows from) are built per query.
//!
//! Sessions are deliberately `!Sync`: one session per serving thread, all
//! sharing one cloned engine. See the scoped-thread test in
//! `tests/engine_session.rs` for the intended concurrent shape.

use crate::budget::QueryBudget;
use crate::context::{BuildOutcome, ContextParts, ContextScratch, SearchContext};
use crate::ctxcache::{ContextCache, ContextCacheStats};
use crate::engine::{AlgorithmChoice, MacEngine};
use crate::error::MacError;
use crate::global::{GlobalSearch, GsOptions, GsScratch};
use crate::local::{ExpandStrategy, LocalSearch};
use crate::policy::ExecutionPolicy;
use crate::query::{MacQuery, QuerySignature};
use crate::result::{
    MacSearchResult, PartialResult, QueryOutcome, QueryPhase, QueryProgress, SearchStats,
};
use rsn_road::budget::BudgetTicker;
use rsn_road::ExhaustionCause;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A per-thread handle executing MAC queries against a prepared engine.
///
/// Obtained from [`MacEngine::session`]. The entry points mirror the
/// one-shot wrappers: [`execute`](Self::execute) infers the problem from the
/// query's `j` (Problem 1 / top-j when `j > 1`, Problem 2 / non-contained
/// otherwise); [`execute_non_contained`](Self::execute_non_contained) and
/// [`execute_top_j`](Self::execute_top_j) select explicitly. Batch serving
/// goes through [`execute_batch`](Self::execute_batch).
#[derive(Debug)]
pub struct QuerySession {
    engine: MacEngine,
    scratch: ContextScratch,
    /// Session-level search-context cache (`None` = disabled, the default):
    /// repeat queries with the same context signature skip the range filter,
    /// the (k,t)-core peel, and the `O(core²)` r-dominance graph build.
    cache: Option<ContextCache>,
    /// Retained global-search scratch: task stack, leaf arena, half-space
    /// and arrangement pools — reused across queries so a warmed query
    /// allocates nothing.
    gs_scratch: GsScratch,
    /// How this session executes: algorithm/filter defaults, global-search
    /// parallelism and work stealing, local-framework knobs, default budget.
    /// Seeded from the engine's policy at [`MacEngine::session`]; replaced
    /// wholesale by [`with_policy`](Self::with_policy).
    policy: ExecutionPolicy,
    /// Pooled cache-key husk: the context signature of the current query is
    /// rebuilt in place on this buffer (and swapped with the cache entry's
    /// owned key on a hit), so a warmed cache lookup allocates nothing.
    key_buf: Option<QuerySignature>,
    executed: u64,
    stats: SessionStats,
    /// Test-only: makes the next query panic mid-execution, exercising the
    /// panic guard (see [`inject_panic_on_next_query`](Self::inject_panic_on_next_query)).
    #[cfg(feature = "failpoints")]
    panic_next: bool,
}

/// Lightweight per-session serving counters, cheap enough to keep always-on.
/// A serving loop (see `rsn-serve`) logs these — and aggregates them across
/// workers via [`merge`](Self::merge) — without reaching into the session's
/// internals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries answered (complete or partial); errors are counted separately.
    pub served: u64,
    /// Queries answered exactly.
    pub complete: u64,
    /// Queries degraded to a [`QueryOutcome::Partial`] by their budget.
    pub partial: u64,
    /// Queries that failed (invalid query, contained panic).
    pub errors: u64,
    /// Mid-query panics contained by the session guard (each also counts as
    /// one error).
    pub panics_recovered: u64,
    /// Context-cache hits (0 when the cache is disabled).
    pub context_cache_hits: u64,
    /// Context-cache misses (0 when the cache is disabled).
    pub context_cache_misses: u64,
    /// Queries inside [`execute_batch`](QuerySession::execute_batch) calls
    /// answered by sharing an earlier in-batch result instead of executing.
    pub batch_queries_deduped: u64,
}

impl SessionStats {
    /// Adds another session's counters into this one (for aggregating a
    /// worker pool).
    pub fn merge(&mut self, other: &SessionStats) {
        self.served += other.served;
        self.complete += other.complete;
        self.partial += other.partial;
        self.errors += other.errors;
        self.panics_recovered += other.panics_recovered;
        self.context_cache_hits += other.context_cache_hits;
        self.context_cache_misses += other.context_cache_misses;
        self.batch_queries_deduped += other.batch_queries_deduped;
    }

    /// Context-cache hit fraction in `[0, 1]` (0 before any lookup).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.context_cache_hits + self.context_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.context_cache_hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for SessionStats {
    /// One-line log form:
    /// `served 120 (118 complete, 2 partial), 0 errors (0 panics recovered), cache 80/100 hits, 4 batch-deduped`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "served {} ({} complete, {} partial), {} errors ({} panics recovered), \
             cache {}/{} hits, {} batch-deduped",
            self.served,
            self.complete,
            self.partial,
            self.errors,
            self.panics_recovered,
            self.context_cache_hits,
            self.context_cache_hits + self.context_cache_misses,
            self.batch_queries_deduped,
        )
    }
}

/// The outcome of one [`QuerySession::execute_batch`] call.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-query results, in input order.
    pub results: Vec<MacSearchResult>,
    /// Aggregate throughput statistics for the batch.
    pub stats: BatchStats,
}

/// Aggregate statistics of one executed batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchStats {
    /// Number of queries served (including deduplicated ones).
    pub queries: usize,
    /// Queries answered by sharing an earlier in-batch result (exact
    /// signature repeats; always 0 for budgeted batches, which never dedupe).
    pub deduplicated: usize,
    /// Wall-clock seconds for the whole batch.
    pub elapsed_seconds: f64,
    /// Served queries per second (0.0 for an empty batch).
    pub queries_per_second: f64,
}

/// The outcome of one [`QuerySession::execute_batch_with_budget`] call.
///
/// Unlike the all-or-nothing [`execute_batch`](QuerySession::execute_batch),
/// the budgeted batch degrades gracefully: every query gets its own slot, an
/// invalid query or a contained panic records its error in place, and the
/// batch keeps serving the remaining queries.
#[derive(Debug)]
pub struct BudgetedBatchOutcome {
    /// Per-query outcomes, in input order. `Ok` carries a
    /// [`QueryOutcome`] (complete or partial); `Err` records why that one
    /// query failed without aborting the batch.
    pub outcomes: Vec<Result<QueryOutcome, MacError>>,
    /// Aggregate throughput statistics for the batch (counts every slot,
    /// including failed ones).
    pub stats: BatchStats,
}

impl QuerySession {
    pub(crate) fn new(engine: MacEngine) -> Self {
        let policy = engine.policy().clone();
        QuerySession {
            engine,
            scratch: ContextScratch::new(),
            cache: None,
            gs_scratch: GsScratch::new(),
            policy,
            key_buf: None,
            executed: 0,
            stats: SessionStats::default(),
            #[cfg(feature = "failpoints")]
            panic_next: false,
        }
    }

    /// Arms a one-shot injected panic: the next `execute*` call panics
    /// mid-execution (after the epoch is pinned, before any result exists),
    /// exercising the session's panic containment. Test-only, behind the
    /// `failpoints` feature.
    #[cfg(feature = "failpoints")]
    pub fn inject_panic_on_next_query(&mut self) {
        self.panic_next = true;
    }

    /// Fires (and disarms) the injected query panic, if armed.
    #[cfg(feature = "failpoints")]
    fn fire_query_failpoint(&mut self) {
        if std::mem::take(&mut self.panic_next) {
            panic!("injected query panic");
        }
    }

    #[cfg(not(feature = "failpoints"))]
    #[inline(always)]
    fn fire_query_failpoint(&mut self) {}

    /// Replaces this session's [`ExecutionPolicy`] wholesale. The session
    /// starts from its engine's policy ([`MacEngine::policy`]); use this to
    /// diverge locally — e.g. one latency-critical session running the
    /// parallel global search while the rest of the pool stays serial:
    ///
    /// ```ignore
    /// let mut fast = engine
    ///     .session()
    ///     .with_policy(engine.policy().clone().with_parallelism(0));
    /// ```
    pub fn with_policy(mut self, policy: ExecutionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The policy this session executes under.
    pub fn policy(&self) -> &ExecutionPolicy {
        &self.policy
    }

    /// Sets the number of worker threads the global search uses
    /// (`1` = serial, `0` = all cores).
    #[deprecated(
        since = "0.10.0",
        note = "set `ExecutionPolicy::parallelism` instead — via \
                `MacEngine::build_with_policy` or `QuerySession::with_policy`"
    )]
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.policy.parallelism = workers;
        self
    }

    /// Overrides the local framework's candidate-selection strategy.
    #[deprecated(
        since = "0.10.0",
        note = "set `ExecutionPolicy::expand_strategy` instead — via \
                `MacEngine::build_with_policy` or `QuerySession::with_policy`"
    )]
    pub fn with_expand_strategy(mut self, strategy: ExpandStrategy) -> Self {
        self.policy.expand_strategy = strategy;
        self
    }

    /// Overrides the local framework's candidate budget (minimum 1).
    #[deprecated(
        since = "0.10.0",
        note = "set `ExecutionPolicy::max_candidates` instead — via \
                `MacEngine::build_with_policy` or `QuerySession::with_policy`"
    )]
    pub fn with_max_candidates(mut self, max_candidates: usize) -> Self {
        self.policy.max_candidates = max_candidates.max(1);
        self
    }

    /// Enables the session-level [`ContextCache`] with room for `capacity`
    /// contexts (minimum 1): repeat queries sharing a
    /// [context signature](crate::query::QuerySignature::context_signature)
    /// reuse the built search context — skipping the range filter, the
    /// (k,t)-core peel, and the `O(core²)` r-dominance graph build — as long
    /// as the engine epoch is unchanged. An
    /// [`apply_updates`](MacEngine::apply_updates) invalidates the cache
    /// wholesale at the next lookup, so cached answers are always identical
    /// to freshly computed ones.
    pub fn with_context_cache(mut self, capacity: usize) -> Self {
        self.cache = Some(ContextCache::new(capacity));
        self
    }

    /// Disables the session-level context cache, dropping any cached
    /// contexts.
    pub fn without_context_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// The engine this session serves from.
    pub fn engine(&self) -> &MacEngine {
        &self.engine
    }

    /// Number of queries this session has executed.
    pub fn queries_executed(&self) -> u64 {
        self.executed
    }

    /// Snapshot of this session's serving counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Counter snapshot of the context cache, when one is enabled.
    pub fn context_cache_stats(&self) -> Option<ContextCacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Returns a finished result's buffers to this session's scratch pools:
    /// the next global-search query reuses the result's cell, weight, and
    /// community vectors instead of allocating fresh ones. This closes the
    /// last allocation loop of the steady state — with a context-cache hit
    /// and recycled results, a repeated query performs no heap allocation at
    /// all (pinned by the counting-allocator test in
    /// `tests/steady_state_alloc.rs`). Callers that keep their results simply
    /// drop them; recycling is an optimization, not a duty.
    pub fn recycle(&mut self, result: MacSearchResult) {
        self.gs_scratch.recycle(result);
    }

    /// Takes the cached context for this query (if caching is on and the
    /// entry matches the pinned epoch), counting the hit or miss. Also
    /// returns the owned lookup key — rebuilt in place on the session's
    /// pooled husk, so a warmed lookup computes it without allocating — which
    /// the caller passes back to [`store_context`](Self::store_context) after
    /// the search; a panic in between only loses the entry.
    fn take_cached_context(
        &mut self,
        epoch_id: u64,
        query: &MacQuery,
    ) -> (Option<QuerySignature>, Option<ContextParts>) {
        let Some(cache) = self.cache.as_mut() else {
            return (None, None);
        };
        let mut key = self.key_buf.take().unwrap_or_else(QuerySignature::empty);
        query.write_context_signature(&mut key);
        match cache.take(epoch_id, &key) {
            Some((stored_key, parts)) => {
                self.stats.context_cache_hits += 1;
                // The entry's key is identical to the husk; park it as the
                // next lookup's husk so the steady state never allocates a
                // signature.
                self.key_buf = Some(stored_key);
                (Some(key), Some(parts))
            }
            None => {
                self.stats.context_cache_misses += 1;
                (Some(key), None)
            }
        }
    }

    /// Stores a search context's parts back into the cache (no-op when
    /// caching is off).
    fn store_context(&mut self, epoch_id: u64, key: QuerySignature, parts: ContextParts) {
        if let Some(cache) = self.cache.as_mut() {
            cache.store(epoch_id, key, parts);
        }
    }

    /// Executes one query, resolving the algorithm and range-filter strategy
    /// through the engine's calibration. The problem is inferred from the
    /// query: top-j (Problem 1) when `j > 1`, non-contained MAC (Problem 2)
    /// otherwise — the two coincide at `j = 1`.
    pub fn execute(&mut self, query: &MacQuery) -> Result<MacSearchResult, MacError> {
        self.run_complete(query, query.j > 1)
    }

    /// Executes one query as Problem 2: the non-contained MAC per partition.
    pub fn execute_non_contained(&mut self, query: &MacQuery) -> Result<MacSearchResult, MacError> {
        self.run_complete(query, false)
    }

    /// Executes one query as Problem 1: the top-j MACs per partition.
    pub fn execute_top_j(&mut self, query: &MacQuery) -> Result<MacSearchResult, MacError> {
        self.run_complete(query, true)
    }

    /// Executes one query under a [`QueryBudget`], degrading gracefully: when
    /// the budget exhausts mid-query the session returns
    /// [`QueryOutcome::Partial`] carrying every community confirmed so far
    /// plus progress counters, instead of an error. An
    /// [unlimited](QueryBudget::is_unlimited) budget takes the exact
    /// (unbudgeted) path and always yields [`QueryOutcome::Complete`] with a
    /// result identical to [`execute`](Self::execute).
    ///
    /// The problem is inferred from the query's `j`, as in
    /// [`execute`](Self::execute). `Err` is reserved for invalid queries and
    /// contained panics — budget exhaustion is never an error here (see
    /// [`execute_with_budget_strict`](Self::execute_with_budget_strict) for
    /// the strict contract).
    pub fn execute_with_budget(
        &mut self,
        query: &MacQuery,
        budget: &QueryBudget,
    ) -> Result<QueryOutcome, MacError> {
        self.run_guarded(query, query.j > 1, Some(budget))
    }

    /// Strict variant of [`execute_with_budget`](Self::execute_with_budget):
    /// budget exhaustion is an error
    /// ([`MacError::BudgetExhausted`])
    /// instead of a partial answer. For callers that would rather retry with
    /// a bigger budget than serve a truncated result.
    /// Executes one query under the policy's
    /// [`default_budget`](ExecutionPolicy::default_budget): the budgeted
    /// path when the policy sets limits, the exact path (always
    /// [`QueryOutcome::Complete`]) when it is unlimited. Per-query budgets
    /// still win — pass one via
    /// [`execute_with_budget`](Self::execute_with_budget).
    pub fn execute_with_default_budget(
        &mut self,
        query: &MacQuery,
    ) -> Result<QueryOutcome, MacError> {
        if self.policy.default_budget.is_unlimited() {
            self.execute(query).map(QueryOutcome::Complete)
        } else {
            let budget = self.policy.default_budget.clone();
            self.execute_with_budget(query, &budget)
        }
    }

    pub fn execute_with_budget_strict(
        &mut self,
        query: &MacQuery,
        budget: &QueryBudget,
    ) -> Result<MacSearchResult, MacError> {
        match self.execute_with_budget(query, budget)? {
            QueryOutcome::Complete(result) => Ok(result),
            QueryOutcome::Partial(partial) => Err(MacError::BudgetExhausted(partial.cause)),
        }
    }

    /// Executes a batch of queries, arming `budget` afresh for each one
    /// (per-query deadline/work-limit; a shared cancel flag stops the whole
    /// batch cooperatively). Unlike [`execute_batch`](Self::execute_batch)
    /// this never aborts early: an invalid query or a contained panic records
    /// its error in its slot and serving continues with the next query.
    ///
    /// The budgeted batch runs its slots serially (deadlines are per-query
    /// wall-clock limits — racing slots against each other would skew them);
    /// inside each slot the session's [`ExecutionPolicy`] still applies, so a
    /// parallel global search shares the armed ticker across its workers.
    pub fn execute_batch_with_budget(
        &mut self,
        queries: &[MacQuery],
        budget: &QueryBudget,
    ) -> BudgetedBatchOutcome {
        let start = Instant::now();
        let mut outcomes = Vec::with_capacity(queries.len());
        for query in queries {
            outcomes.push(self.execute_with_budget(query, budget));
        }
        let elapsed_seconds = start.elapsed().as_secs_f64();
        let queries_per_second = if queries.is_empty() {
            0.0
        } else {
            queries.len() as f64 / elapsed_seconds.max(1e-12)
        };
        BudgetedBatchOutcome {
            outcomes,
            stats: BatchStats {
                queries: queries.len(),
                deduplicated: 0,
                elapsed_seconds,
                queries_per_second,
            },
        }
    }

    /// Executes a batch of queries through this session's scratch, returning
    /// per-query results plus aggregate throughput statistics. Fails on the
    /// first invalid query (results computed so far are discarded, matching
    /// the all-or-nothing contract of a batch).
    ///
    /// Queries that are exact repeats of an earlier query in the same batch
    /// (same [`signature`](MacQuery::signature): users, `k`, `t`, region, `j`,
    /// algorithm) are answered by sharing that query's result instead of
    /// re-executing — the batch-local form of the serving front-end's
    /// coalescing. The whole batch runs against epochs observed during the
    /// call, so a shared result is exactly what re-execution would have
    /// produced on the first occurrence's epoch.
    ///
    /// When the session's [`ExecutionPolicy`] requests parallelism the
    /// distinct queries (after deduplication) are distributed across a
    /// bounded pool of scoped worker threads, each owning its own
    /// [`QuerySession`] over the shared engine. Batch-level parallelism
    /// replaces query-level parallelism inside the pool (workers run with
    /// `parallelism = 1`, so thread counts stay bounded), every query is
    /// deterministic regardless of which session executes it, and results
    /// are reassembled in input order — the batch is output-identical to the
    /// serial path. If several queries fail, the error of the earliest
    /// failing input slot is returned, exactly as the serial path would.
    pub fn execute_batch(&mut self, queries: &[MacQuery]) -> Result<BatchOutcome, MacError> {
        let start = Instant::now();
        // Deduplicate first (the PR-9 contract): `assignment[i]` maps input
        // slot `i` to its distinct-query index, in first-occurrence order.
        let mut seen: HashMap<QuerySignature, usize> = HashMap::new();
        let mut distinct: Vec<usize> = Vec::new();
        let mut assignment: Vec<usize> = Vec::with_capacity(queries.len());
        for (i, query) in queries.iter().enumerate() {
            let next = distinct.len();
            let idx = *seen.entry(query.signature()).or_insert(next);
            if idx == next {
                distinct.push(i);
            }
            assignment.push(idx);
        }
        let deduplicated = queries.len() - distinct.len();
        self.stats.batch_queries_deduped += deduplicated as u64;

        let workers = self.resolved_batch_workers(distinct.len());
        let mut executed: Vec<Option<MacSearchResult>> = if workers <= 1 {
            let mut out = Vec::with_capacity(distinct.len());
            for &qi in &distinct {
                out.push(Some(self.execute(&queries[qi])?));
            }
            out
        } else {
            self.execute_distinct_parallel(queries, &distinct, workers)?
        };

        // Reassemble in input order: the first occurrence takes its executed
        // result, repeats share a clone of it (as the serial loop did).
        let mut results: Vec<MacSearchResult> = Vec::with_capacity(queries.len());
        for (i, &idx) in assignment.iter().enumerate() {
            if distinct[idx] == i {
                results.push(executed[idx].take().expect("distinct result present"));
            } else {
                let shared = results[distinct[idx]].clone();
                results.push(shared);
            }
        }
        let elapsed_seconds = start.elapsed().as_secs_f64();
        let queries_per_second = if queries.is_empty() {
            0.0
        } else {
            queries.len() as f64 / elapsed_seconds.max(1e-12)
        };
        Ok(BatchOutcome {
            results,
            stats: BatchStats {
                queries: queries.len(),
                deduplicated,
                elapsed_seconds,
                queries_per_second,
            },
        })
    }

    /// Number of batch worker threads for `distinct` deduplicated queries
    /// under this session's policy: `0` = all cores, never more than one
    /// worker per distinct query, `1` = serial in-session execution.
    fn resolved_batch_workers(&self, distinct: usize) -> usize {
        if distinct <= 1 {
            return 1;
        }
        let requested = if self.policy.parallelism == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.policy.parallelism
        };
        requested.max(1).min(distinct)
    }

    /// Parallel half of [`execute_batch`](Self::execute_batch): executes the
    /// distinct queries across `workers` scoped threads pulling from an
    /// atomic cursor, each with its own session over the shared engine.
    /// Worker serving counters and executed-query counts fold back into this
    /// session, so the observable session statistics match the serial path's
    /// accounting. Returns per-distinct results, or the error of the
    /// earliest-failing distinct query.
    fn execute_distinct_parallel(
        &mut self,
        queries: &[MacQuery],
        distinct: &[usize],
        workers: usize,
    ) -> Result<Vec<Option<MacSearchResult>>, MacError> {
        let engine = &self.engine;
        // Workers inherit this session's policy minus its parallelism: the
        // batch level already owns the thread budget, and nested pools would
        // oversubscribe without changing any result.
        let mut worker_policy = self.policy.clone();
        worker_policy.parallelism = 1;
        let cursor = AtomicUsize::new(0);
        type WorkerYield = (
            Vec<(usize, Result<MacSearchResult, MacError>)>,
            SessionStats,
            u64,
        );
        let per_worker: Vec<WorkerYield> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let worker_policy = worker_policy.clone();
                    let cursor = &cursor;
                    s.spawn(move || {
                        let mut session = engine.session().with_policy(worker_policy);
                        let mut produced: Vec<(usize, Result<MacSearchResult, MacError>)> =
                            Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&qi) = distinct.get(i) else { break };
                            produced.push((i, session.execute(&queries[qi])));
                        }
                        (produced, session.stats(), session.queries_executed())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch worker panicked"))
                .collect()
        });
        let mut slots: Vec<Option<Result<MacSearchResult, MacError>>> =
            (0..distinct.len()).map(|_| None).collect();
        for (produced, worker_stats, worker_executed) in per_worker {
            self.stats.merge(&worker_stats);
            self.executed += worker_executed;
            for (i, outcome) in produced {
                slots[i] = Some(outcome);
            }
        }
        // `distinct` is in first-occurrence order, so the first error here is
        // the one the serial loop would have hit first.
        let mut out = Vec::with_capacity(distinct.len());
        let mut first_error: Option<MacError> = None;
        for slot in slots {
            match slot.expect("every distinct query executed") {
                Ok(result) => out.push(Some(result)),
                Err(err) => {
                    if first_error.is_none() {
                        first_error = Some(err);
                    }
                    out.push(None);
                }
            }
        }
        match first_error {
            Some(err) => Err(err),
            None => Ok(out),
        }
    }

    /// Unbudgeted entry used by the plain `execute*` family: routes through
    /// the panic guard (a contained panic surfaces as
    /// [`MacError::ExecutionPanicked`](crate::MacError::ExecutionPanicked)
    /// with the session scratch rebuilt) but never produces a partial answer.
    /// The algorithm the policy layering requests *before* calibration: an
    /// explicit query choice wins, a query-level `Auto` falls back to the
    /// policy default (a remaining `Auto` is resolved by the engine's
    /// calibrated crossover).
    fn requested_algorithm(&self, query: &MacQuery) -> AlgorithmChoice {
        match query.algorithm {
            AlgorithmChoice::Auto => self.policy.algorithm,
            explicit => explicit,
        }
    }

    /// The global-search options this session's policy selects.
    fn gs_options(&self) -> GsOptions {
        GsOptions {
            parallelism: self.policy.parallelism,
            work_stealing: self.policy.work_stealing,
        }
    }

    fn run_complete(
        &mut self,
        query: &MacQuery,
        top_j_mode: bool,
    ) -> Result<MacSearchResult, MacError> {
        match self.run_guarded(query, top_j_mode, None)? {
            QueryOutcome::Complete(result) => Ok(result),
            QueryOutcome::Partial(_) => unreachable!("unbudgeted run cannot be partial"),
        }
    }

    /// Panic-isolating wrapper around the two inner paths. A panic escaping
    /// query execution is caught here; the session's scratch may have been
    /// mid-mutation, so it is poisoned-and-rebuilt (fresh buffers, one-time
    /// re-allocation cost) and the panic is reported as a contained
    /// [`MacError::ExecutionPanicked`](crate::MacError::ExecutionPanicked).
    /// The engine's shared state is immutable per epoch, so no other session
    /// can observe the torn intermediate state.
    fn run_guarded(
        &mut self,
        query: &MacQuery,
        top_j_mode: bool,
        budget: Option<&QueryBudget>,
    ) -> Result<QueryOutcome, MacError> {
        let guarded = catch_unwind(AssertUnwindSafe(|| match budget {
            Some(budget) if !budget.is_unlimited() => {
                let mut ticker = budget.arm();
                self.run_budgeted(query, top_j_mode, &mut ticker)
            }
            _ => self
                .run_exact(query, top_j_mode)
                .map(QueryOutcome::Complete),
        }));
        let outcome = match guarded {
            Ok(outcome) => outcome,
            Err(payload) => {
                // The scratch buffers may hold torn intermediate state from
                // the unwound query; rebuild them so the session stays
                // serviceable. A context the cache had lent out is simply
                // lost (its entry was removed on take), so the cache never
                // holds torn state either.
                self.scratch = ContextScratch::new();
                self.stats.panics_recovered += 1;
                let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                Err(MacError::ExecutionPanicked(msg))
            }
        };
        match &outcome {
            Ok(QueryOutcome::Complete(_)) => {
                self.stats.served += 1;
                self.stats.complete += 1;
            }
            Ok(QueryOutcome::Partial(_)) => {
                self.stats.served += 1;
                self.stats.partial += 1;
            }
            Err(_) => self.stats.errors += 1,
        }
        outcome
    }

    /// Budget-limited inner path: every pipeline stage polls the ticker, and
    /// exhaustion at any point degrades to a [`QueryOutcome::Partial`]
    /// carrying the cells confirmed so far (each exact — the budgeted stages
    /// only ever drop whole units of work, never truncate a reported cell).
    fn run_budgeted(
        &mut self,
        query: &MacQuery,
        top_j_mode: bool,
        ticker: &mut BudgetTicker,
    ) -> Result<QueryOutcome, MacError> {
        let start = Instant::now();
        let epoch = self.engine.epoch();
        self.fire_query_failpoint();
        let rsn = epoch.network();
        let (ctx_key, cached) = if self.cache.is_some() {
            // See run_exact: a cache hit bypasses the validating build.
            query.validate(rsn)?;
            self.take_cached_context(epoch.id(), query)
        } else {
            (None, None)
        };
        let ctx = match cached {
            // A cached context skips the filter/peel/build stages and their
            // budget charges entirely: only the search stage draws on the
            // ticker, exactly as if the context had been free.
            Some(parts) => SearchContext::from_parts(rsn, query, parts),
            None => {
                let filter = epoch.resolve_filter_with(query, self.policy.filter);
                let built = SearchContext::build_budgeted(
                    rsn,
                    query,
                    filter,
                    epoch.user_targets(),
                    &mut self.scratch,
                    ticker,
                )?;
                match built {
                    BuildOutcome::Ready(ctx) => *ctx,
                    BuildOutcome::Empty => {
                        self.executed += 1;
                        return Ok(QueryOutcome::Complete(Self::empty_result(start)));
                    }
                    BuildOutcome::Exhausted(phase) => {
                        self.executed += 1;
                        return Ok(QueryOutcome::Partial(PartialResult {
                            result: Self::empty_result(start),
                            cause: ticker.cause().unwrap_or(ExhaustionCause::WorkLimit),
                            progress: QueryProgress {
                                phase,
                                explored: ticker.spent(),
                                // The pipeline stopped before the search
                                // stages; at least the current stage's work
                                // is known undone.
                                remaining: 1,
                            },
                        }));
                    }
                }
            }
        };
        let algorithm = epoch.resolve_algorithm(self.requested_algorithm(query), ctx.core_size());
        let (mut run, phase) = match algorithm {
            AlgorithmChoice::Local => (
                LocalSearch::run_context_budgeted(
                    &ctx,
                    self.policy.expand_strategy,
                    self.policy.max_candidates,
                    top_j_mode,
                    ticker,
                ),
                QueryPhase::LocalSearch,
            ),
            // resolve_algorithm never returns Auto. Budgeted global search
            // stays serial under the default policy — a serial prefix is what
            // makes a partial answer a strict subset of the full run — and
            // shares the ticker across workers (via an atomic latch) when the
            // policy opts into parallelism.
            _ => {
                let opts = self.gs_options();
                (
                    GlobalSearch::explore_context_budgeted(
                        &ctx,
                        &mut self.gs_scratch,
                        opts,
                        top_j_mode,
                        ticker,
                    ),
                    QueryPhase::GlobalSearch,
                )
            }
        };
        if let Some(key) = ctx_key {
            self.store_context(epoch.id(), key, ctx.into_parts());
        }
        run.result.stats.elapsed_seconds = start.elapsed().as_secs_f64();
        self.executed += 1;
        if run.completed {
            Ok(QueryOutcome::Complete(run.result))
        } else {
            Ok(QueryOutcome::Partial(PartialResult {
                result: run.result,
                cause: ticker.cause().unwrap_or(ExhaustionCause::WorkLimit),
                progress: QueryProgress {
                    phase,
                    explored: run.explored,
                    remaining: run.remaining,
                },
            }))
        }
    }

    fn empty_result(start: Instant) -> MacSearchResult {
        MacSearchResult {
            cells: Vec::new(),
            stats: SearchStats {
                elapsed_seconds: start.elapsed().as_secs_f64(),
                ..SearchStats::default()
            },
        }
    }

    fn run_exact(
        &mut self,
        query: &MacQuery,
        top_j_mode: bool,
    ) -> Result<MacSearchResult, MacError> {
        let start = Instant::now();
        // Pin the epoch being served: a concurrently applied NetworkDelta
        // swaps the engine's pointer but never mutates this snapshot, so the
        // whole query runs against one consistent network + index + grouping.
        let epoch = self.engine.epoch();
        self.fire_query_failpoint();
        let rsn = epoch.network();
        // Queries sharing everything the context depends on (users, k, t,
        // region) share one cache slot regardless of j / algorithm. The
        // build path validates inside the core extraction; a cache hit skips
        // that stage, so the cached path validates explicitly (cheap,
        // O(|Q|)) to keep invalid queries an error either way.
        let (ctx_key, cached) = if self.cache.is_some() {
            query.validate(rsn)?;
            self.take_cached_context(epoch.id(), query)
        } else {
            (None, None)
        };
        let ctx = match cached {
            Some(parts) => Some(SearchContext::from_parts(rsn, query, parts)),
            None => {
                let filter = epoch.resolve_filter_with(query, self.policy.filter);
                SearchContext::build_with(
                    rsn,
                    query,
                    filter,
                    epoch.user_targets(),
                    &mut self.scratch,
                )?
            }
        };
        let Some(ctx) = ctx else {
            self.executed += 1;
            return Ok(MacSearchResult {
                cells: Vec::new(),
                stats: SearchStats {
                    elapsed_seconds: start.elapsed().as_secs_f64(),
                    ..SearchStats::default()
                },
            });
        };
        let algorithm = epoch.resolve_algorithm(self.requested_algorithm(query), ctx.core_size());
        let mut result = match algorithm {
            AlgorithmChoice::Local => LocalSearch::run_context(
                &ctx,
                self.policy.expand_strategy,
                self.policy.max_candidates,
                top_j_mode,
                self.policy.parallelism,
            ),
            // resolve_algorithm never returns Auto.
            _ => {
                let opts = self.gs_options();
                GlobalSearch::explore_context(&ctx, &mut self.gs_scratch, opts, top_j_mode)
            }
        };
        if let Some(key) = ctx_key {
            self.store_context(epoch.id(), key, ctx.into_parts());
        }
        result.stats.elapsed_seconds = start.elapsed().as_secs_f64();
        self.executed += 1;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RoadSocialNetwork;
    use rsn_geom::region::PrefRegion;
    use rsn_graph::graph::Graph;
    use rsn_road::network::{Location, RoadNetwork};

    /// The two-K4 network of the global/local tests.
    fn network() -> RoadSocialNetwork {
        let social = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (0, 4),
                (0, 5),
                (1, 4),
                (1, 5),
                (4, 5),
            ],
        );
        let road = RoadNetwork::from_edges(2, &[(0, 1, 1.0)]);
        let locations = vec![Location::vertex(0); 6];
        let attrs = vec![
            vec![6.0, 6.0],
            vec![6.0, 6.0],
            vec![9.0, 1.0],
            vec![8.0, 2.0],
            vec![1.0, 9.0],
            vec![2.0, 8.0],
        ];
        RoadSocialNetwork::new(social, road, locations, attrs).unwrap()
    }

    fn query() -> MacQuery {
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        MacQuery::new(vec![0, 1], 3, 10.0, region)
    }

    fn assert_results_identical(a: &MacSearchResult, b: &MacSearchResult) {
        assert_eq!(a.cells.len(), b.cells.len(), "cell count diverged");
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.sample_weight, cb.sample_weight);
            assert_eq!(
                ca.communities
                    .iter()
                    .map(|c| &c.vertices)
                    .collect::<Vec<_>>(),
                cb.communities
                    .iter()
                    .map(|c| &c.vertices)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn session_matches_one_shot_global_search() {
        let rsn = network();
        let q = query();
        let reference = crate::GlobalSearch::new(&rsn, &q)
            .run_non_contained()
            .unwrap();
        let engine = MacEngine::build_uncalibrated(rsn);
        let mut session = engine.session();
        let got = session.execute(&q).unwrap();
        assert_results_identical(&reference, &got);
        assert_eq!(session.queries_executed(), 1);
    }

    #[test]
    fn session_infers_the_problem_from_j() {
        let engine = MacEngine::build_uncalibrated(network());
        let mut session = engine.session();
        let q1 = query();
        let q2 = query().with_top_j(2);
        let nc = session.execute(&q1).unwrap();
        for cell in &nc.cells {
            assert_eq!(cell.communities.len(), 1);
        }
        let top2 = session.execute(&q2).unwrap();
        assert!(top2.cells.iter().any(|c| c.communities.len() == 2));
        let explicit = session.execute_top_j(&q2).unwrap();
        assert_results_identical(&top2, &explicit);
    }

    #[test]
    fn session_runs_the_local_framework_on_request() {
        let rsn = network();
        let q = query().with_algorithm(AlgorithmChoice::Local);
        let reference = crate::LocalSearch::new(&rsn, &q)
            .run_non_contained()
            .unwrap();
        let engine = MacEngine::build_uncalibrated(rsn);
        let mut session = engine.session();
        let got = session.execute(&q).unwrap();
        assert_results_identical(&reference, &got);
    }

    #[test]
    fn batch_matches_individual_execution_and_counts_throughput() {
        let engine = MacEngine::build_uncalibrated(network());
        let queries = vec![query(), query().with_top_j(2), query()];
        let mut individual = engine.session();
        let expect: Vec<_> = queries
            .iter()
            .map(|q| individual.execute(q).unwrap())
            .collect();
        let mut session = engine.session();
        let batch = session.execute_batch(&queries).unwrap();
        assert_eq!(batch.results.len(), 3);
        assert_eq!(batch.stats.queries, 3);
        assert!(batch.stats.queries_per_second > 0.0);
        for (a, b) in expect.iter().zip(&batch.results) {
            assert_results_identical(a, b);
        }
        // The third query repeats the first's signature, so only two actually
        // executed; the repeat shared the first result.
        assert_eq!(batch.stats.deduplicated, 1);
        assert_eq!(session.queries_executed(), 2);
    }

    #[test]
    fn batch_dedupes_identical_queries_with_identical_results() {
        let engine = MacEngine::build_uncalibrated(network());
        // Two identical pairs plus one distinct query, interleaved.
        let queries = vec![
            query(),
            query().with_top_j(2),
            query(),
            query().with_top_j(2),
            query(),
        ];
        let mut reference = engine.session();
        let expect: Vec<_> = queries
            .iter()
            .map(|q| reference.execute(q).unwrap())
            .collect();
        let mut session = engine.session();
        let batch = session.execute_batch(&queries).unwrap();
        assert_eq!(batch.stats.queries, 5);
        assert_eq!(batch.stats.deduplicated, 3);
        assert_eq!(session.stats().batch_queries_deduped, 3);
        // Only the two distinct signatures actually executed.
        assert_eq!(session.queries_executed(), 2);
        for (a, b) in expect.iter().zip(&batch.results) {
            assert_results_identical(a, b);
        }
    }

    #[test]
    fn parallel_batch_matches_serial_batch_exactly() {
        let engine = MacEngine::build_uncalibrated(network());
        // Mixed workload with repeats: two distinct signatures, five slots.
        let queries = vec![
            query(),
            query().with_top_j(2),
            query(),
            query().with_top_j(2),
            query(),
        ];
        let mut serial = engine.session();
        let expect = serial.execute_batch(&queries).unwrap();
        let mut parallel = engine
            .session()
            .with_policy(ExecutionPolicy::new().with_parallelism(2));
        let batch = parallel.execute_batch(&queries).unwrap();
        assert_eq!(batch.stats.queries, 5);
        assert_eq!(batch.stats.deduplicated, 3);
        assert_eq!(parallel.stats().batch_queries_deduped, 3);
        // Worker accounting folds back into the batch session.
        assert_eq!(parallel.queries_executed(), 2);
        assert_eq!(parallel.stats().served, 2);
        for (a, b) in expect.results.iter().zip(&batch.results) {
            assert_results_identical(a, b);
        }
    }

    #[test]
    fn parallel_batch_reports_the_earliest_error() {
        let engine = MacEngine::build_uncalibrated(network());
        let mut bad = query();
        bad.q.clear();
        let queries = vec![query().with_top_j(2), bad, query()];
        let mut parallel = engine
            .session()
            .with_policy(ExecutionPolicy::new().with_parallelism(3));
        let err = parallel.execute_batch(&queries).unwrap_err();
        assert!(matches!(err, MacError::EmptyQuery), "got {err:?}");
    }

    #[test]
    fn context_cache_hits_repeat_queries_and_answers_identically() {
        let engine = MacEngine::build_uncalibrated(network());
        let mut plain = engine.session();
        let mut cached = engine.session().with_context_cache(4);
        let q1 = query();
        let q2 = query().with_top_j(2); // same context signature as q1
        for _ in 0..3 {
            assert_results_identical(&plain.execute(&q1).unwrap(), &cached.execute(&q1).unwrap());
            assert_results_identical(&plain.execute(&q2).unwrap(), &cached.execute(&q2).unwrap());
        }
        let stats = cached.stats();
        // First q1 misses; everything after (including q2, which shares the
        // context signature) hits.
        assert_eq!(stats.context_cache_misses, 1);
        assert_eq!(stats.context_cache_hits, 5);
        assert_eq!(stats.served, 6);
        assert_eq!(stats.complete, 6);
        let cache_stats = cached.context_cache_stats().unwrap();
        assert_eq!(cache_stats.hits, 5);
        assert!(plain.context_cache_stats().is_none());
    }

    #[test]
    fn context_cache_invalidates_on_update_and_stays_correct() {
        use crate::engine::NetworkDelta;
        let engine = MacEngine::build_uncalibrated(network());
        let mut cached = engine.session().with_context_cache(4);
        let q = query();
        let before = cached.execute(&q).unwrap();
        assert_results_identical(&cached.execute(&q).unwrap(), &before);
        // Strand user 3 on the far side of a now-expensive road segment: it
        // drops out of the (k,t)-core, so the cached context is stale and
        // must not be reused.
        let delta = NetworkDelta::new()
            .reweight_edge(0, 1, 100.0)
            .move_user(3, Location::vertex(1));
        engine.apply_updates(&delta).unwrap();
        let after = cached.execute(&q).unwrap();
        let mut fresh = engine.session();
        assert_results_identical(&fresh.execute(&q).unwrap(), &after);
        assert_eq!(cached.context_cache_stats().unwrap().epoch_invalidations, 1);
    }

    #[test]
    fn cached_budgeted_queries_match_and_invalid_queries_still_error() {
        let engine = MacEngine::build_uncalibrated(network());
        let mut cached = engine.session().with_context_cache(4);
        let q = query();
        let unlimited = QueryBudget::new();
        let first = cached.execute_with_budget(&q, &unlimited).unwrap();
        let second = cached.execute_with_budget(&q, &unlimited).unwrap();
        assert!(first.is_complete() && second.is_complete());
        assert_results_identical(first.result(), second.result());
        // The budgeted path shares the cache with the exact path.
        assert!(cached.stats().context_cache_hits >= 1);
        // A cache hit must not bypass query validation.
        let mut bad = query();
        bad.q.clear();
        assert!(cached.execute(&bad).is_err());
        assert_eq!(cached.stats().errors, 1);
    }

    #[test]
    fn session_stats_display_and_merge() {
        let engine = MacEngine::build_uncalibrated(network());
        let mut session = engine.session();
        session.execute(&query()).unwrap();
        let mut total = SessionStats::default();
        total.merge(&session.stats());
        total.merge(&session.stats());
        assert_eq!(total.served, 2);
        assert_eq!(total.complete, 2);
        let line = total.to_string();
        assert!(line.contains("served 2"), "unexpected display: {line}");
        assert_eq!(total.cache_hit_rate(), 0.0);
    }

    #[test]
    fn invalid_query_is_an_error_and_empty_core_is_an_empty_result() {
        let engine = MacEngine::build_uncalibrated(network());
        let mut session = engine.session();
        let mut bad = query();
        bad.q.clear();
        assert!(session.execute(&bad).is_err());
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let impossible = MacQuery::new(vec![0], 5, 10.0, region);
        let result = session.execute(&impossible).unwrap();
        assert!(result.is_empty());
    }
}

//! Fixed-weight peeling: the exact MAC computation for one weight vector.
//!
//! For a single weight vector `w`, the top-j MACs can be computed by the
//! iterative deletion argument of Lemmas 4–6: start from the maximal
//! (k,t)-core, repeatedly delete the smallest-score vertex together with the
//! structural cascade (Algorithm 1's DFS procedure), and stop when Corollary 1
//! fires. The global search effectively runs this process symbolically over
//! whole partitions of `R`; this module runs it for a concrete `w`, which is
//! used (a) as the per-cell verification oracle of the local search, (b) to
//! recover top-j communities for a cell, and (c) as the ground truth in the
//! test suite.

use crate::context::SearchContext;
use rsn_graph::subgraph::SubgraphView;

/// Result of peeling at one weight vector.
#[derive(Debug, Clone, PartialEq)]
pub struct PeelOutcome {
    /// Local ids of the non-contained MAC at this weight vector.
    pub final_vertices: Vec<u32>,
    /// Deleted vertex groups, in deletion order (each group is one smallest-
    /// score deletion plus its structural cascade and connectivity trim).
    pub deletion_groups: Vec<Vec<u32>>,
}

impl PeelOutcome {
    /// The top-j communities (as local-id sets) implied by the peel: the final
    /// community first, then progressively adding back the most recently
    /// deleted groups (the heap-backtracking of Algorithm 1, line 13).
    pub fn top_j(&self, j: usize) -> Vec<Vec<u32>> {
        let mut out = Vec::with_capacity(j);
        let mut current = self.final_vertices.clone();
        current.sort_unstable();
        out.push(current.clone());
        for group in self.deletion_groups.iter().rev() {
            if out.len() >= j {
                break;
            }
            current.extend(group.iter().copied());
            current.sort_unstable();
            out.push(current.clone());
        }
        out
    }
}

/// Runs the fixed-weight peeling process on the (k,t)-core of `ctx`.
///
/// Returns the non-contained MAC for `reduced_w` together with the deletion
/// history. The weight vector is expected to lie inside the query region,
/// but any valid reduced weight vector is accepted.
pub fn peel_at_weight(ctx: &SearchContext<'_>, reduced_w: &[f64]) -> PeelOutcome {
    let k = ctx.query.k;
    let q = &ctx.local_q;
    let n = ctx.core_size();
    let mut view = SubgraphView::full(&ctx.local_graph);
    let mut groups: Vec<Vec<u32>> = Vec::new();

    loop {
        // smallest-score alive vertex
        let mut min_v: Option<u32> = None;
        let mut min_score = f64::INFINITY;
        for v in 0..n as u32 {
            if view.is_alive(v) {
                let s = ctx.score(v, reduced_w);
                if s < min_score {
                    min_score = s;
                    min_v = Some(v);
                }
            }
        }
        let Some(u) = min_v else { break };
        // Corollary 1(1): the smallest-score vertex is a query vertex.
        if q.contains(&u) {
            break;
        }
        // Tentative deletion with cascade (Algorithm 1, lines 15-20), behind
        // a checkpoint so a failed step rolls back without cloning.
        let cp = view.checkpoint();
        view.delete_cascade_logged(u, k);
        if q.iter().any(|&qv| !view.is_alive(qv)) {
            view.rollback(cp);
            break;
        }
        view.retain_component_of_logged(q[0]);
        if q.iter().any(|&qv| !view.is_alive(qv)) {
            view.rollback(cp);
            break;
        }
        // Corollary 1(2): nothing left beyond Q-connected k-core means the
        // previous community was non-contained; but if the k-core survived we
        // commit the deletion and continue.
        if view.num_alive() == 0 {
            view.rollback(cp);
            break;
        }
        groups.push(view.log_since(cp).to_vec());
    }

    let mut final_vertices = view.alive_vertices();
    final_vertices.sort_unstable();
    PeelOutcome {
        final_vertices,
        deletion_groups: groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RoadSocialNetwork;
    use crate::query::MacQuery;
    use rsn_geom::region::PrefRegion;
    use rsn_graph::graph::Graph;
    use rsn_road::network::{Location, RoadNetwork};

    /// A 6-user network: K4 on {0,1,2,3} and K4 on {0,1,4,5} sharing the edge
    /// (0,1); 2-dimensional attributes make {2,3} strong in dim 1 and {4,5}
    /// strong in dim 2.
    fn network() -> RoadSocialNetwork {
        let social = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (0, 4),
                (0, 5),
                (1, 4),
                (1, 5),
                (4, 5),
            ],
        );
        let road = RoadNetwork::from_edges(2, &[(0, 1, 1.0)]);
        let locations = vec![Location::vertex(0); 6];
        let attrs = vec![
            vec![6.0, 6.0], // 0: query, strong everywhere
            vec![6.0, 6.0], // 1: query, strong everywhere
            vec![9.0, 1.0], // 2: strong in dim 1
            vec![8.0, 2.0], // 3
            vec![1.0, 9.0], // 4: strong in dim 2
            vec![2.0, 8.0], // 5
        ];
        RoadSocialNetwork::new(social, road, locations, attrs).unwrap()
    }

    fn context(rsn: &RoadSocialNetwork, query: &MacQuery) -> SearchContext<'static> {
        // SAFETY for tests: leak to get 'static lifetimes conveniently.
        let rsn: &'static RoadSocialNetwork = Box::leak(Box::new(rsn.clone()));
        let query: &'static MacQuery = Box::leak(Box::new(query.clone()));
        SearchContext::build(rsn, query).unwrap().unwrap()
    }

    #[test]
    fn peel_prefers_high_scoring_side() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0, 1], 3, 10.0, region);
        let ctx = context(&rsn, &query);

        // w1 = 0.9: dimension 1 dominates, so the {2,3} side survives
        let high_w1 = peel_at_weight(&ctx, &[0.9]);
        let comm = ctx.community_from_locals(&high_w1.final_vertices);
        assert_eq!(comm.vertices, vec![0, 1, 2, 3]);

        // w1 = 0.1: dimension 2 dominates, so the {4,5} side survives
        let low_w1 = peel_at_weight(&ctx, &[0.1]);
        let comm2 = ctx.community_from_locals(&low_w1.final_vertices);
        assert_eq!(comm2.vertices, vec![0, 1, 4, 5]);
    }

    #[test]
    fn peel_stops_at_query_vertex() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        // query vertex 4 has the lowest dim-1 score; with w1 high the peel
        // would want to delete it first but must stop instead
        let query = MacQuery::new(vec![4], 3, 10.0, region);
        let ctx = context(&rsn, &query);
        let outcome = peel_at_weight(&ctx, &[0.9]);
        let comm = ctx.community_from_locals(&outcome.final_vertices);
        assert!(comm.contains(4));
        // the community is still a connected k-core containing the query
        assert!(comm.len() >= 4);
    }

    #[test]
    fn top_j_adds_back_deletion_groups() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0, 1], 3, 10.0, region).with_top_j(2);
        let ctx = context(&rsn, &query);
        let outcome = peel_at_weight(&ctx, &[0.9]);
        let top = outcome.top_j(2);
        assert_eq!(top.len(), 2.min(outcome.deletion_groups.len() + 1));
        // the first is the non-contained MAC, later entries are supersets
        for window in top.windows(2) {
            let smaller: std::collections::HashSet<u32> = window[0].iter().copied().collect();
            assert!(window[1].iter().filter(|v| smaller.contains(v)).count() == smaller.len());
            assert!(window[1].len() > window[0].len());
        }
        // the largest possible answer is the whole (k,t)-core
        let top_many = outcome.top_j(100);
        assert_eq!(top_many.last().unwrap().len(), ctx.core_size());
    }

    #[test]
    fn peel_on_minimal_core_returns_it() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        // k = 5 has no 5-core; k = 3 with all six queried cannot delete anyone
        let query = MacQuery::new(vec![0, 1, 2, 3, 4, 5], 3, 10.0, region);
        let ctx = context(&rsn, &query);
        let outcome = peel_at_weight(&ctx, &[0.5]);
        assert_eq!(outcome.final_vertices.len(), 6);
        assert!(outcome.deletion_groups.is_empty());
    }
}

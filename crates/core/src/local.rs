//! Local search: the framework of Algorithms 3–5 (`LS-T` / `LS-NC`).
//!
//! Instead of peeling the entire maximal (k,t)-core, the local search expands
//! candidate communities outwards from the query vertices (`Expand`,
//! Algorithm 4) using the priority functions of Eq. 3 / Eq. 4 — structural
//! gain plus the r-dominance-layer term that pulls in vertices dominating as
//! many others as possible — and then validates every candidate against the
//! r-dominance graph (`Verify`, Algorithm 5 with Corollaries 2–3): a candidate
//! `H` is a non-contained MAC exactly in the sub-region of `R` where the
//! bottom-layer vertices of `G_e` out-score the effective top-layer vertices
//! of `G_c` (with the anchor and bound-vertex refinements). Each reported
//! `(community, cell)` pair is additionally confirmed against the fixed-weight
//! peeling oracle at the cell's sample point, so reported results are always
//! consistent with the global search.

use crate::context::SearchContext;
use crate::error::MacError;
use crate::network::RoadSocialNetwork;
use crate::peel::peel_at_weight;
use crate::policy::ExecutionPolicy;
use crate::query::MacQuery;
use crate::result::{BudgetedRun, CellResult, MacSearchResult, SearchStats};
use rsn_geom::cell::Cell;
use rsn_geom::halfspace::HalfSpace;
use rsn_geom::partition::PartitionTree;
use rsn_graph::subgraph::SubgraphView;
use rsn_road::budget::BudgetTicker;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Candidate-selection strategy for the `Expand` procedure (Section VI-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExpandStrategy {
    /// Eq. 3: `f(v) = λ·f2(v) + f3(v)` where `f2` is the degree of `v` towards
    /// the current community (fastest average-degree growth).
    DegreeDriven {
        /// The trade-off factor λ (the paper uses λ = 10).
        lambda: f64,
    },
    /// Eq. 4: `f(v) = ζ·f1(v) + f3(v)` where `f1 ∈ {0, 1}` rewards an
    /// immediate increase of the minimum degree.
    MinDegreeDriven {
        /// The constant ζ (the paper uses ζ = 100).
        zeta: f64,
    },
}

impl Default for ExpandStrategy {
    fn default() -> Self {
        ExpandStrategy::DegreeDriven { lambda: 10.0 }
    }
}

/// The local search framework of Section VI.
#[derive(Debug, Clone)]
pub struct LocalSearch<'a> {
    rsn: &'a RoadSocialNetwork,
    query: &'a MacQuery,
    strategy: ExpandStrategy,
    max_candidates: usize,
    parallelism: usize,
}

impl<'a> LocalSearch<'a> {
    /// Creates a local search with the default strategy (Eq. 3, λ = 10) and
    /// at most 12 expansion candidates, verified serially.
    pub fn new(rsn: &'a RoadSocialNetwork, query: &'a MacQuery) -> Self {
        LocalSearch {
            rsn,
            query,
            strategy: ExpandStrategy::default(),
            max_candidates: 12,
            parallelism: 1,
        }
    }

    /// Adopts the local-framework knobs of an [`ExecutionPolicy`]: the
    /// expansion strategy, the candidate cap, and the verification
    /// parallelism. The non-deprecated way to configure a one-shot local
    /// search; prefer executing through a
    /// [`QuerySession`](crate::session::QuerySession), which applies its
    /// policy automatically.
    pub fn with_policy(mut self, policy: &ExecutionPolicy) -> Self {
        self.strategy = policy.expand_strategy;
        self.max_candidates = policy.max_candidates.max(1);
        self.parallelism = policy.parallelism;
        self
    }

    /// Overrides the candidate-selection strategy.
    pub fn with_strategy(mut self, strategy: ExpandStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the maximum number of expansion candidates.
    pub fn with_max_candidates(mut self, max_candidates: usize) -> Self {
        self.max_candidates = max_candidates.max(1);
        self
    }

    /// Problem 2: non-contained MACs with their partitions (LS-NC).
    pub fn run_non_contained(&self) -> Result<MacSearchResult, MacError> {
        self.run(false)
    }

    /// Problem 1: top-j MACs with their partitions (LS-T).
    pub fn run_top_j(&self) -> Result<MacSearchResult, MacError> {
        self.run(true)
    }

    fn run(&self, top_j_mode: bool) -> Result<MacSearchResult, MacError> {
        let start = Instant::now();
        let Some(ctx) = SearchContext::build(self.rsn, self.query)? else {
            return Ok(MacSearchResult {
                cells: Vec::new(),
                stats: SearchStats {
                    elapsed_seconds: start.elapsed().as_secs_f64(),
                    ..SearchStats::default()
                },
            });
        };
        let mut result = Self::run_context(
            &ctx,
            self.strategy,
            self.max_candidates,
            top_j_mode,
            self.parallelism,
        );
        result.stats.elapsed_seconds = start.elapsed().as_secs_f64();
        Ok(result)
    }

    /// Verifies one deduplicated candidate (Algorithm 5) and appends its
    /// confirmed `(cell, communities)` pairs to `out_cells`. The unit of work
    /// both the serial loop and the parallel workers run per candidate.
    fn verify_candidate(
        ctx: &SearchContext<'_>,
        cand: &[u32],
        top_j_mode: bool,
        stats: &mut SearchStats,
        out_cells: &mut Vec<CellResult>,
    ) {
        let verified = Self::verify(ctx, cand, stats);
        for (cell, sample) in verified {
            let communities = if top_j_mode {
                let outcome = peel_at_weight(ctx, &sample);
                outcome
                    .top_j(ctx.query.j)
                    .into_iter()
                    .map(|locals| ctx.community_from_locals(&locals))
                    .collect()
            } else {
                vec![ctx.community_from_locals(cand)]
            };
            out_cells.push(CellResult {
                cell,
                sample_weight: sample,
                communities,
            });
        }
    }

    /// Number of verification workers for `unique` deduplicated candidates:
    /// `0` = all cores, otherwise the requested count, never more than one
    /// worker per candidate.
    fn resolved_verify_workers(parallelism: usize, unique: usize) -> usize {
        if unique <= 1 {
            return 1;
        }
        let requested = if parallelism == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            parallelism
        };
        requested.max(1).min(unique)
    }

    /// Runs the expand-and-verify framework on a prebuilt [`SearchContext`] —
    /// the engine-level entry point shared by the one-shot wrappers and by
    /// [`QuerySession`](crate::session::QuerySession). `elapsed_seconds`
    /// covers only this phase; callers overwrite it with their end-to-end
    /// timing.
    ///
    /// Expansion (Algorithm 4) and deduplication stay serial — they are cheap
    /// and order-defining. With `parallelism > 1` the per-candidate
    /// verification (Algorithm 5, including the top-j peels) fans out over
    /// scoped worker threads pulling candidates from an atomic cursor; results
    /// are reassembled in candidate order and worker counters folded with
    /// [`SearchStats::merge_worker`], so the output is identical to the serial
    /// run cell for cell.
    pub(crate) fn run_context(
        ctx: &SearchContext<'_>,
        strategy: ExpandStrategy,
        max_candidates: usize,
        top_j_mode: bool,
        parallelism: usize,
    ) -> MacSearchResult {
        let start = Instant::now();
        let mut stats = SearchStats {
            kt_core_vertices: ctx.core_size(),
            kt_core_edges: ctx.core_edges(),
            dominance_tests: ctx.gd.tests_performed(),
            memory_bytes: ctx.gd.memory_bytes(),
            ..SearchStats::default()
        };

        // --- Expand (Algorithm 4) ---
        let candidates = Self::expand(ctx, strategy, max_candidates);
        stats.candidates_generated = candidates.len();

        // Deduplicate up front, keeping first-occurrence order: the serial
        // loop skipped repeats in place, so the unique sequence is the work
        // list either way.
        let mut seen: HashSet<Vec<u32>> = HashSet::new();
        let unique: Vec<Vec<u32>> = candidates
            .into_iter()
            .filter(|cand| seen.insert(cand.clone()))
            .collect();

        // --- Verify (Algorithm 5) ---
        let workers = Self::resolved_verify_workers(parallelism, unique.len());
        let mut out_cells: Vec<CellResult> = Vec::new();
        if workers <= 1 {
            for cand in &unique {
                Self::verify_candidate(ctx, cand, top_j_mode, &mut stats, &mut out_cells);
            }
        } else {
            stats.parallel_workers = workers;
            let cursor = AtomicUsize::new(0);
            // Each worker yields its (candidate index, cells) batches plus a
            // private stats accumulator to fold after the join.
            type WorkerYield = (Vec<(usize, Vec<CellResult>)>, SearchStats);
            let per_worker: Vec<WorkerYield> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        s.spawn(|| {
                            let mut local_stats = SearchStats::default();
                            let mut produced: Vec<(usize, Vec<CellResult>)> = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(cand) = unique.get(i) else { break };
                                let mut cells = Vec::new();
                                Self::verify_candidate(
                                    ctx,
                                    cand,
                                    top_j_mode,
                                    &mut local_stats,
                                    &mut cells,
                                );
                                produced.push((i, cells));
                            }
                            (produced, local_stats)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("local verification worker panicked"))
                    .collect()
            });
            // Reassemble in candidate order: slot i holds candidate i's cells.
            let mut slots: Vec<Option<Vec<CellResult>>> = (0..unique.len()).map(|_| None).collect();
            for (produced, worker_stats) in per_worker {
                // Workers start from zeroed stats, so the fold only adds the
                // verification counters (candidates_generated stays 0 there).
                stats.merge_worker(&worker_stats);
                for (i, cells) in produced {
                    slots[i] = Some(cells);
                }
            }
            for slot in slots {
                out_cells.extend(slot.unwrap_or_default());
            }
        }

        stats.elapsed_seconds = start.elapsed().as_secs_f64();
        MacSearchResult {
            cells: out_cells,
            stats,
        }
    }

    /// Budgeted [`run_context`](Self::run_context): the expansion is charged
    /// as one lump (it is bounded by the core size times the candidate cap)
    /// and the verification loop checks the budget at every candidate
    /// boundary, so an exhausted run drops whole candidates — every reported
    /// cell stays exact and a partial answer is a subset of the full one.
    ///
    /// Budgeted verification stays serial regardless of the policy's
    /// parallelism: a serial prefix is what makes a partial answer a strict
    /// subset of the full run (the same contract the budgeted global search
    /// keeps), and the ticker's exhaustion latch still stops the whole query.
    pub(crate) fn run_context_budgeted(
        ctx: &SearchContext<'_>,
        strategy: ExpandStrategy,
        max_candidates: usize,
        top_j_mode: bool,
        ticker: &mut BudgetTicker,
    ) -> BudgetedRun {
        let start = Instant::now();
        let mut stats = SearchStats {
            kt_core_vertices: ctx.core_size(),
            kt_core_edges: ctx.core_edges(),
            dominance_tests: ctx.gd.tests_performed(),
            memory_bytes: ctx.gd.memory_bytes(),
            ..SearchStats::default()
        };

        // --- Expand (Algorithm 4), charged as one lump up front ---
        if !ticker.charge(ctx.core_size() as u64) {
            stats.elapsed_seconds = start.elapsed().as_secs_f64();
            return BudgetedRun {
                result: MacSearchResult {
                    cells: Vec::new(),
                    stats,
                },
                completed: false,
                explored: 0,
                remaining: 1,
            };
        }
        let candidates = Self::expand(ctx, strategy, max_candidates);
        stats.candidates_generated = candidates.len();
        let total = candidates.len() as u64;

        // --- Verify (Algorithm 5), budget checked per candidate ---
        let mut out_cells: Vec<CellResult> = Vec::new();
        let mut seen: HashSet<Vec<u32>> = HashSet::new();
        let mut explored = 0u64;
        let mut completed = true;
        for (i, cand) in candidates.into_iter().enumerate() {
            // One candidate's verification is roughly linear in its size;
            // charge it at the boundary so exhaustion drops it whole.
            if !ticker.charge(cand.len() as u64 + 1) {
                completed = false;
                break;
            }
            explored = i as u64 + 1;
            if !seen.insert(cand.clone()) {
                continue;
            }
            Self::verify_candidate(ctx, &cand, top_j_mode, &mut stats, &mut out_cells);
        }

        stats.elapsed_seconds = start.elapsed().as_secs_f64();
        BudgetedRun {
            result: MacSearchResult {
                cells: out_cells,
                stats,
            },
            completed,
            explored,
            remaining: total - explored,
        }
    }

    /// Algorithm 4: best-first expansion from `Q` collecting candidate
    /// communities (each a connected k-core containing `Q`).
    ///
    /// As suggested by the paper (Algorithm 4, line 1), in addition to the
    /// plain expansion starting from `Q` we also run one expansion per
    /// neighbour of `Q`, seeding `V_H = Q ∪ {v}`; this diversifies candidates
    /// when several disjoint communities surround the query vertices.
    fn expand(
        ctx: &SearchContext<'_>,
        strategy: ExpandStrategy,
        max_candidates: usize,
    ) -> Vec<Vec<u32>> {
        let graph = &ctx.local_graph;
        let mut seeds: Vec<Option<u32>> = vec![None];
        let mut seen_seed: HashSet<u32> = HashSet::new();
        for &qv in &ctx.local_q {
            for &nb in graph.neighbors(qv) {
                if !ctx.local_q.contains(&nb) && seen_seed.insert(nb) {
                    seeds.push(Some(nb));
                }
            }
        }
        let mut candidates: Vec<Vec<u32>> = Vec::new();
        for seed in seeds {
            if candidates.len() >= max_candidates {
                break;
            }
            let budget = max_candidates - candidates.len();
            candidates.extend(Self::expand_once(ctx, strategy, seed, budget));
        }
        candidates
    }

    /// One best-first expansion run, optionally seeded with an extra vertex.
    fn expand_once(
        ctx: &SearchContext<'_>,
        strategy: ExpandStrategy,
        extra_seed: Option<u32>,
        budget: usize,
    ) -> Vec<Vec<u32>> {
        let n = ctx.core_size();
        let k = ctx.query.k;
        let graph = &ctx.local_graph;
        let zeta_layer = ctx.gd.max_layer() as f64 + 1.0;

        let mut in_h = vec![false; n];
        let mut deg_in_h = vec![0u32; n];
        let mut members: Vec<u32> = Vec::new();
        for &qv in ctx.local_q.iter().chain(extra_seed.iter()) {
            if !in_h[qv as usize] {
                in_h[qv as usize] = true;
                members.push(qv);
            }
        }
        // deg_in_h[x] = number of neighbours of x currently inside H, for
        // members (their within-H degree) and frontier vertices alike.
        for &m in &members {
            for &nb in graph.neighbors(m) {
                deg_in_h[nb as usize] += 1;
            }
        }

        let record_if_core = |members: &[u32], deg_in_h: &[u32], cands: &mut Vec<Vec<u32>>| {
            let min_deg = members
                .iter()
                .map(|&m| deg_in_h[m as usize])
                .min()
                .unwrap_or(0);
            if min_deg >= k && !members.is_empty() {
                let mut c: Vec<u32> = members.to_vec();
                c.sort_unstable();
                cands.push(c);
            }
        };
        let mut candidates: Vec<Vec<u32>> = Vec::new();
        record_if_core(&members, &deg_in_h, &mut candidates);

        // Lazy best-first frontier: priorities are recomputed on pop.
        let mut frontier: HashSet<u32> = HashSet::new();
        for &m in &members {
            for &nb in graph.neighbors(m) {
                if !in_h[nb as usize] {
                    frontier.insert(nb);
                }
            }
        }

        while candidates.len() < budget && members.len() < n {
            // Pick the frontier vertex with the best priority f(v).
            let best = frontier
                .iter()
                .copied()
                .map(|v| {
                    (
                        Self::priority(ctx, strategy, v, &members, &deg_in_h, zeta_layer),
                        v,
                    )
                })
                .max_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)));
            let Some((_, v)) = best else { break };
            frontier.remove(&v);
            in_h[v as usize] = true;
            members.push(v);
            for &nb in graph.neighbors(v) {
                deg_in_h[nb as usize] += 1;
                if !in_h[nb as usize] {
                    frontier.insert(nb);
                }
            }
            record_if_core(&members, &deg_in_h, &mut candidates);
        }
        candidates
    }

    /// Priority `f(v)` of a frontier vertex (Eq. 3 / Eq. 4).
    fn priority(
        ctx: &SearchContext<'_>,
        strategy: ExpandStrategy,
        v: u32,
        members: &[u32],
        deg_in_h: &[u32],
        zeta_layer: f64,
    ) -> f64 {
        let f3 = zeta_layer - ctx.gd.layer(v as usize) as f64;
        match strategy {
            ExpandStrategy::DegreeDriven { lambda } => {
                let f2 = deg_in_h[v as usize] as f64;
                lambda * f2 + f3
            }
            ExpandStrategy::MinDegreeDriven { zeta } => {
                let graph = &ctx.local_graph;
                let current_min = members
                    .iter()
                    .map(|&m| deg_in_h[m as usize])
                    .min()
                    .unwrap_or(0);
                let new_min = members
                    .iter()
                    .map(|&m| deg_in_h[m as usize] + u32::from(graph.has_edge(m, v)))
                    .chain(std::iter::once(deg_in_h[v as usize]))
                    .min()
                    .unwrap_or(0);
                let f1 = if new_min > current_min { 1.0 } else { 0.0 };
                zeta * f1 + f3
            }
        }
    }

    /// Algorithm 5: verification of one candidate against `G_d`.
    ///
    /// Returns the sub-partitions of `R` (with sample weights) where the
    /// candidate is the non-contained MAC.
    fn verify(
        ctx: &SearchContext<'_>,
        cand: &[u32],
        stats: &mut SearchStats,
    ) -> Vec<(Cell, Vec<f64>)> {
        let n = ctx.core_size();
        let k = ctx.query.k;
        let q = &ctx.local_q;

        let mut in_h = vec![false; n];
        for &v in cand {
            in_h[v as usize] = true;
        }
        let out_mask: Vec<bool> = (0..n).map(|v| !in_h[v]).collect();

        // If the candidate is the entire (k,t)-core there is nothing to beat:
        // it is the non-contained MAC wherever no proper sub-community wins,
        // which the sample-point oracle below settles directly.
        // --- Corollary 2: structural feasibility of removing everything outside H ---
        // U = vertices outside H that r-dominate some member of H; they can
        // only leave through structural cascades.
        let mut dominates_member = vec![false; n];
        for &h in cand {
            for u in ctx.gd.dominators(h as usize).iter() {
                dominates_member[u] = true;
            }
        }
        let free: Vec<u32> = (0..n as u32)
            .filter(|&v| out_mask[v as usize] && !dominates_member[v as usize])
            .collect();
        // Simulate deleting the freely deletable vertices; everything outside H
        // must disappear through this cascade, otherwise H is unreachable.
        let mut sim = SubgraphView::full(&ctx.local_graph);
        for &v in &free {
            if sim.is_alive(v) {
                sim.delete_cascade(v, k);
            }
        }
        let mut structurally_bound: Vec<bool> = vec![false; n];
        for v in 0..n as u32 {
            if out_mask[v as usize] && dominates_member[v as usize] && !sim.is_alive(v) {
                structurally_bound[v as usize] = true;
            }
        }
        if (0..n).any(|v| out_mask[v] && dominates_member[v] && sim.is_alive(v as u32)) {
            return Vec::new();
        }

        // --- Competitors (Corollary 3) ---
        let lb_ge: Vec<usize> = ctx.gd.leaves_within(&in_h);
        let mut gc_mask = out_mask.clone();
        for v in 0..n {
            if structurally_bound[v] {
                gc_mask[v] = false;
            }
        }
        let lt_gc: Vec<usize> = ctx.gd.top_within(&gc_mask);

        // Anchors (Lemma 8): non-query leaf vertices of Ge whose removal keeps
        // a connected k-core containing Q inside H. One view probed behind
        // checkpoints — no per-anchor clone.
        let mut h_view = SubgraphView::from_vertices(&ctx.local_graph, cand);
        let mut anchors: Vec<usize> = Vec::new();
        for &v in &lb_ge {
            if q.contains(&(v as u32)) {
                continue;
            }
            let cp = h_view.checkpoint();
            h_view.delete_cascade_logged(v as u32, k);
            let ok =
                q.iter().all(|&qv| h_view.is_alive(qv)) && h_view.has_connected_k_core_with(k, q);
            h_view.rollback(cp);
            if ok {
                anchors.push(v);
            }
        }

        // Constraint half-spaces: every bottom-layer member of Ge must beat
        // every effective top-layer vertex of Gc, and every anchor must beat
        // the other leaves of Ge.
        let mut halfspaces: Vec<HalfSpace> = Vec::new();
        for &x in &lb_ge {
            for &y in &lt_gc {
                halfspaces.push(HalfSpace::score_at_least(&ctx.attrs[x], &ctx.attrs[y]));
            }
        }
        for &a in &anchors {
            for &x in &lb_ge {
                if x != a {
                    halfspaces.push(HalfSpace::score_at_least(&ctx.attrs[a], &ctx.attrs[x]));
                }
            }
        }
        stats.halfspaces_computed += halfspaces.len();

        // Arrangement of the competitor half-spaces inside R, keeping the
        // cells where every constraint holds.
        let base = Cell::from_region(&ctx.query.region);
        let mut tree = PartitionTree::new(base);
        for hs in &halfspaces {
            tree.insert(hs);
            stats.halfspace_insertions += 1;
        }
        stats.memory_bytes = stats
            .memory_bytes
            .max(ctx.gd.memory_bytes() + tree.memory_bytes());

        let mut results = Vec::new();
        let leaves = tree.leaves();
        stats.partitions_explored += leaves.len();
        for cell in leaves {
            let Some(sample) = cell.sample_point() else {
                continue;
            };
            // Within a leaf no constraint half-space straddles, so checking the
            // sample point checks the whole cell.
            if !halfspaces.iter().all(|hs| hs.contains(&sample)) {
                continue;
            }
            // Final confirmation against the fixed-weight peeling oracle.
            let oracle = peel_at_weight(ctx, &sample);
            if oracle.final_vertices == cand {
                results.push((cell.clone(), sample));
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::GlobalSearch;
    use rsn_geom::region::PrefRegion;
    use rsn_graph::graph::Graph;
    use rsn_road::network::{Location, RoadNetwork};

    /// Same two-K4 network used by the global-search tests.
    fn network() -> RoadSocialNetwork {
        let social = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (0, 4),
                (0, 5),
                (1, 4),
                (1, 5),
                (4, 5),
            ],
        );
        let road = RoadNetwork::from_edges(2, &[(0, 1, 1.0)]);
        let locations = vec![Location::vertex(0); 6];
        let attrs = vec![
            vec![6.0, 6.0],
            vec![6.0, 6.0],
            vec![9.0, 1.0],
            vec![8.0, 2.0],
            vec![1.0, 9.0],
            vec![2.0, 8.0],
        ];
        RoadSocialNetwork::new(social, road, locations, attrs).unwrap()
    }

    #[test]
    fn ls_nc_results_are_valid_and_subset_of_global() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0, 1], 3, 10.0, region);

        let ls = LocalSearch::new(&rsn, &query);
        let local = ls.run_non_contained().unwrap();
        let global = GlobalSearch::new(&rsn, &query).run_non_contained().unwrap();

        assert!(!local.is_empty(), "local search should find communities");
        let global_distinct: Vec<Vec<u32>> = global
            .distinct_communities()
            .iter()
            .map(|c| c.vertices.clone())
            .collect();
        for c in local.distinct_communities() {
            assert!(
                global_distinct.contains(&c.vertices),
                "local community {:?} not found by global search",
                c.vertices
            );
        }
        assert!(local.stats.candidates_generated > 0);
    }

    #[test]
    fn ls_finds_both_preference_sides() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0, 1], 3, 10.0, region);
        let ls = LocalSearch::new(&rsn, &query).with_max_candidates(16);
        let result = ls.run_non_contained().unwrap();
        let distinct: Vec<Vec<u32>> = result
            .distinct_communities()
            .iter()
            .map(|c| c.vertices.clone())
            .collect();
        assert!(distinct.contains(&vec![0, 1, 2, 3]));
        assert!(distinct.contains(&vec![0, 1, 4, 5]));
    }

    #[test]
    fn ls_top_j_matches_peeling_oracle() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0, 1], 3, 10.0, region).with_top_j(2);
        let ls = LocalSearch::new(&rsn, &query);
        let result = ls.run_top_j().unwrap();
        assert!(!result.is_empty());
        for cell in &result.cells {
            assert!(cell.communities.len() <= 2);
            for pair in cell.communities.windows(2) {
                assert!(pair[1].contains_all(&pair[0]));
            }
        }
    }

    #[test]
    fn ls_both_strategies_work() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0, 1], 3, 10.0, region);
        for strategy in [
            ExpandStrategy::DegreeDriven { lambda: 10.0 },
            ExpandStrategy::MinDegreeDriven { zeta: 100.0 },
        ] {
            let ls = LocalSearch::new(&rsn, &query).with_strategy(strategy);
            let result = ls.run_non_contained().unwrap();
            assert!(!result.is_empty(), "strategy {strategy:?} found nothing");
        }
    }

    #[test]
    fn parallel_verification_matches_serial_exactly() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        for (query, top_j) in [
            (MacQuery::new(vec![0, 1], 3, 10.0, region.clone()), false),
            (
                MacQuery::new(vec![0, 1], 3, 10.0, region).with_top_j(2),
                true,
            ),
        ] {
            let serial_ls = LocalSearch::new(&rsn, &query).with_max_candidates(16);
            let serial = if top_j {
                serial_ls.run_top_j()
            } else {
                serial_ls.run_non_contained()
            }
            .unwrap();
            let policy = ExecutionPolicy::new()
                .with_parallelism(3)
                .with_max_candidates(16);
            let parallel_ls = LocalSearch::new(&rsn, &query).with_policy(&policy);
            let parallel = if top_j {
                parallel_ls.run_top_j()
            } else {
                parallel_ls.run_non_contained()
            }
            .unwrap();
            assert_eq!(serial.cells.len(), parallel.cells.len());
            for (a, b) in serial.cells.iter().zip(&parallel.cells) {
                assert_eq!(a.sample_weight, b.sample_weight);
                assert_eq!(
                    a.communities
                        .iter()
                        .map(|c| &c.vertices)
                        .collect::<Vec<_>>(),
                    b.communities
                        .iter()
                        .map(|c| &c.vertices)
                        .collect::<Vec<_>>(),
                );
            }
            assert_eq!(
                serial.stats.halfspaces_computed,
                parallel.stats.halfspaces_computed
            );
            assert!(parallel.stats.parallel_workers > 1);
        }
    }

    #[test]
    fn ls_empty_when_no_kt_core() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0], 5, 10.0, region);
        let result = LocalSearch::new(&rsn, &query).run_non_contained().unwrap();
        assert!(result.is_empty());
    }
}

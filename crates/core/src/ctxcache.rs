//! Session-level search-context cache.
//!
//! A result-bearing MAC query pays most of its latency **before** the search
//! proper: the Lemma-1 range filter, the (k,t)-core peel, and the `O(core²)`
//! r-dominance graph build all run per query even when the query is a repeat
//! of one served moments ago — a common shape under production traffic, where
//! popular (Q, k, t, R) combinations recur (the load harness models this with
//! a Zipf-skewed query population). The [`ContextCache`] closes that gap: a
//! [`QuerySession`](crate::session::QuerySession) with a cache keeps the
//! owned [`ContextParts`] of recently built contexts keyed by the query's
//! [context signature](crate::query::QuerySignature::context_signature), and
//! a repeat query skips straight to the search stage.
//!
//! Coherence is epoch-based: the cache remembers which engine epoch its
//! entries were built on, and the first lookup on a different epoch clears it
//! wholesale — after a [`NetworkDelta`](crate::engine::NetworkDelta) there is
//! no cheap way to know which cores survived, and a stale context would be a
//! correctness bug, not a performance one. (Epoch ids are monotonic, so this
//! also handles a session observing several updates between queries.)
//!
//! Entries are **moved out** on hit and moved back in after the search
//! completes: a cache hit is zero-copy, and a query that panics mid-search
//! simply loses its entry (degrading to a miss next time) instead of ever
//! exposing torn state.

use crate::context::ContextParts;
use crate::query::QuerySignature;

/// Default number of cached contexts when a cache is enabled without an
/// explicit capacity.
pub const DEFAULT_CONTEXT_CACHE_CAPACITY: usize = 32;

/// Hit/miss/eviction counters of one [`ContextCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextCacheStats {
    /// Lookups that found a reusable context (same signature, same epoch).
    pub hits: u64,
    /// Lookups that found nothing (first sight, evicted, or epoch-cleared).
    pub misses: u64,
    /// Entries dropped to make room for newer ones.
    pub evictions: u64,
    /// Whole-cache invalidations caused by an epoch change.
    pub epoch_invalidations: u64,
}

impl ContextCacheStats {
    /// Hit fraction in `[0, 1]` (0 when no lookup happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CacheEntry {
    key: QuerySignature,
    parts: ContextParts,
}

impl std::fmt::Debug for CacheEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheEntry")
            .field("key", &self.key)
            .finish_non_exhaustive()
    }
}

/// A bounded, LRU-evicting map from
/// [context signature](crate::query::QuerySignature::context_signature) to
/// the owned parts of a built [`SearchContext`](crate::context::SearchContext),
/// valid for exactly one engine epoch at a time.
///
/// The entry count is intentionally small (a serving thread sees a handful of
/// hot signatures, and one entry can hold an `O(core)`-sized graph plus an
/// `O(core²)`-edge dominance graph), so lookups are a linear scan — cheaper
/// than hashing at this size and free of hasher state.
#[derive(Debug)]
pub struct ContextCache {
    /// Most recently used last.
    entries: Vec<CacheEntry>,
    capacity: usize,
    /// The engine epoch the entries were built on.
    epoch: u64,
    stats: ContextCacheStats,
}

impl ContextCache {
    /// Creates an empty cache holding at most `capacity` contexts (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ContextCache {
            entries: Vec::new(),
            capacity: capacity.max(1),
            epoch: 0,
            stats: ContextCacheStats::default(),
        }
    }

    /// Maximum number of cached contexts.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently cached contexts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache currently holds no context.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ContextCacheStats {
        self.stats
    }

    /// Approximate heap footprint of all cached contexts.
    pub fn approx_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.parts.approx_bytes()).sum()
    }

    /// Drops every entry (the counters survive).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Ensures the cache is coherent with `epoch`, clearing it wholesale on a
    /// change. Called by the session with the epoch it pinned for the query,
    /// before any lookup or store.
    fn sync_epoch(&mut self, epoch: u64) {
        if self.epoch != epoch {
            if !self.entries.is_empty() {
                self.stats.epoch_invalidations += 1;
                self.entries.clear();
            }
            self.epoch = epoch;
        }
    }

    /// Takes the cached context for `key` out of the cache, if it was built
    /// on `epoch`. The entry is *removed* — the caller is expected to
    /// [`store`](Self::store) it back once the search is done, which keeps a
    /// hit zero-copy and panic-safe. The entry's owned key comes back with
    /// the parts so the caller can reuse its buffers (e.g. as the next
    /// lookup's husk) instead of allocating a fresh key for the store.
    pub fn take(
        &mut self,
        epoch: u64,
        key: &QuerySignature,
    ) -> Option<(QuerySignature, ContextParts)> {
        self.sync_epoch(epoch);
        match self.entries.iter().position(|e| &e.key == key) {
            Some(pos) => {
                self.stats.hits += 1;
                let entry = self.entries.remove(pos);
                Some((entry.key, entry.parts))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or re-inserts, after a [`take`](Self::take)) a built context
    /// under `key`, marking it most recently used. Evicts the least recently
    /// used entry when full. A store for a different epoch than the entries'
    /// clears them first.
    pub fn store(&mut self, epoch: u64, key: QuerySignature, parts: ContextParts) {
        self.sync_epoch(epoch);
        if let Some(pos) = self.entries.iter().position(|e| e.key == key) {
            // Same signature stored twice (e.g. two sessions' worth of work
            // merged): keep the newer parts, refresh recency.
            self.entries.remove(pos);
        } else if self.entries.len() >= self.capacity {
            self.entries.remove(0);
            self.stats.evictions += 1;
        }
        self.entries.push(CacheEntry { key, parts });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SearchContext;
    use crate::network::RoadSocialNetwork;
    use crate::query::MacQuery;
    use rsn_geom::region::PrefRegion;
    use rsn_graph::graph::Graph;
    use rsn_road::network::{Location, RoadNetwork};

    fn parts_for(query: &MacQuery, rsn: &RoadSocialNetwork) -> ContextParts {
        SearchContext::build(rsn, query)
            .unwrap()
            .expect("core exists")
            .into_parts()
    }

    fn network() -> RoadSocialNetwork {
        let social =
            Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]);
        let road = RoadNetwork::from_edges(2, &[(0, 1, 1.0)]);
        let locations = vec![Location::vertex(0); 5];
        let attrs = vec![
            vec![5.0, 1.0],
            vec![4.0, 2.0],
            vec![3.0, 3.0],
            vec![2.0, 4.0],
            vec![1.0, 5.0],
        ];
        RoadSocialNetwork::new(social, road, locations, attrs).unwrap()
    }

    fn query(k: u32) -> MacQuery {
        let region = PrefRegion::from_ranges(&[(0.3, 0.7)]).unwrap();
        MacQuery::new(vec![0], k, 10.0, region)
    }

    #[test]
    fn take_store_roundtrip_counts_hits_and_misses() {
        let rsn = network();
        let q = query(3);
        let key = q.signature().context_signature();
        let mut cache = ContextCache::new(4);
        assert!(cache.take(0, &key).is_none());
        cache.store(0, key.clone(), parts_for(&q, &rsn));
        assert_eq!(cache.len(), 1);
        assert!(cache.approx_bytes() > 0);
        let (stored_key, parts) = cache.take(0, &key).expect("hit");
        // A take removes the entry and hands back its owned key; storing the
        // pair back restores the hit without a key clone.
        assert_eq!(stored_key, key);
        assert!(cache.is_empty());
        cache.store(0, stored_key, parts);
        assert!(cache.take(0, &key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn epoch_change_invalidates_everything() {
        let rsn = network();
        let q = query(3);
        let key = q.signature().context_signature();
        let mut cache = ContextCache::new(4);
        cache.store(0, key.clone(), parts_for(&q, &rsn));
        assert!(cache.take(1, &key).is_none(), "new epoch must miss");
        assert_eq!(cache.stats().epoch_invalidations, 1);
        // The cache now follows the new epoch.
        cache.store(1, key.clone(), parts_for(&q, &rsn));
        assert!(cache.take(1, &key).is_some());
    }

    #[test]
    fn lru_eviction_drops_the_oldest_entry() {
        let rsn = network();
        let mut cache = ContextCache::new(2);
        let keys: Vec<_> = (1..4)
            .map(|k| query(k).signature().context_signature())
            .collect();
        for (k, key) in (1..4).zip(&keys) {
            cache.store(0, key.clone(), parts_for(&query(k), &rsn));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.take(0, &keys[0]).is_none(), "oldest entry evicted");
        assert!(cache.take(0, &keys[1]).is_some());
        assert!(cache.take(0, &keys[2]).is_some());
    }
}

//! The unified execution-policy configuration.
//!
//! An [`ExecutionPolicy`] gathers every knob that selects *how* queries
//! execute — which algorithm answers them, which range-filter strategy, how
//! many worker threads the global search fans out over, whether idle workers
//! steal pending subtrees, the local framework's candidate strategy and
//! budget, and the default [`QueryBudget`] — into one builder-style value
//! with three override layers:
//!
//! 1. **Engine**: [`MacEngine::build_with_policy`](crate::engine::MacEngine::build_with_policy)
//!    bakes a policy into the engine; every [`session`](crate::engine::MacEngine::session)
//!    starts from it.
//! 2. **Session**: [`QuerySession::with_policy`](crate::session::QuerySession::with_policy)
//!    replaces one session's policy without touching the engine or its other
//!    sessions.
//! 3. **Query**: an explicit [`MacQuery::with_algorithm`](crate::query::MacQuery::with_algorithm)
//!    or [`with_range_filter`](crate::query::MacQuery::with_range_filter)
//!    wins over both, and [`execute_with_budget`](crate::session::QuerySession::execute_with_budget)
//!    overrides the default budget for one query.
//!
//! Every policy produces **identical answers** for the algorithm the query
//! resolves to: parallelism, work stealing, the filter strategy, and the
//! candidate knobs change speed, never results (the parallel global search is
//! property-tested cell-identical to the serial one). The one caveat is
//! [`algorithm`](ExecutionPolicy::algorithm): `Global` and `Local` answers
//! may legitimately differ (the local framework is a heuristic), so layers
//! that treat equal [query signatures](crate::query::MacQuery::signature) as
//! interchangeable — batch dedup, request coalescing — must run every member
//! of the dedup set under one policy, which they do (one policy per session,
//! one [`ServeConfig`](../../rsn_serve/struct.ServeConfig.html) per server).
//!
//! ```
//! use rsn_core::{AlgorithmChoice, ExecutionPolicy, MacEngine, QueryBudget};
//! use std::time::Duration;
//! # use rsn_geom::region::PrefRegion;
//! # use rsn_graph::graph::Graph;
//! # use rsn_road::network::{Location, RoadNetwork};
//! # let social = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)]);
//! # let road = RoadNetwork::from_edges(2, &[(0, 1, 1.0)]);
//! # let locations = vec![Location::vertex(0); 4];
//! # let attrs = vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![3.0, 3.0], vec![1.5, 2.5]];
//! # let rsn = rsn_core::RoadSocialNetwork::new(social, road, locations, attrs).unwrap();
//! let policy = ExecutionPolicy::new()
//!     .with_parallelism(0)                 // all cores for the global search
//!     .with_work_stealing(true)            // idle workers steal subtrees
//!     .with_default_budget(QueryBudget::new().with_deadline(Duration::from_millis(50)));
//! let engine = MacEngine::build_with_policy(rsn, policy);
//! let mut session = engine.session();      // inherits the engine's policy
//! # let region = PrefRegion::from_ranges(&[(0.2, 0.8)]).unwrap();
//! # let query = rsn_core::MacQuery::new(vec![0], 2, 10.0, region);
//! # assert!(!session.execute(&query).unwrap().is_empty());
//! ```

use crate::budget::QueryBudget;
use crate::engine::AlgorithmChoice;
use crate::local::ExpandStrategy;
use rsn_road::rangefilter::RangeFilterChoice;

/// How queries execute: algorithm and filter defaults, global-search
/// parallelism, work stealing, local-framework knobs, and the default
/// [`QueryBudget`]. See the [module docs](self) for the engine → session →
/// query override layering.
#[derive(Debug, Clone)]
pub struct ExecutionPolicy {
    /// Default search algorithm for queries whose own
    /// [`algorithm`](crate::query::MacQuery::algorithm) is `Auto`. A policy
    /// `Auto` (the default) resolves through the engine's calibrated
    /// crossover rule.
    pub algorithm: AlgorithmChoice,
    /// Default Lemma-1 range-filter strategy for queries whose own
    /// [`filter`](crate::query::MacQuery::filter) is `Auto`. A policy `Auto`
    /// (the default) resolves through the calibrated crossover rule. All
    /// strategies return identical user sets; this only affects speed.
    pub filter: RangeFilterChoice,
    /// Worker threads for the global search: `1` = serial (the default),
    /// `0` = one per available core. Serving deployments that already run
    /// one session per core usually keep `1`; parallelism pays off for
    /// latency-critical single queries on otherwise idle cores.
    pub parallelism: usize,
    /// Whether idle global-search workers steal pending arrangement subtrees
    /// from busy ones (on by default). With stealing off, work is statically
    /// distributed over top-level cells, which can leave workers idle on
    /// skewed arrangements. Results are identical either way.
    pub work_stealing: bool,
    /// Candidate-selection strategy of the local framework.
    pub expand_strategy: ExpandStrategy,
    /// Candidate budget of the local framework (minimum 1).
    pub max_candidates: usize,
    /// Budget applied when the caller does not pass an explicit one:
    /// [`QuerySession::execute_with_default_budget`](crate::session::QuerySession::execute_with_default_budget)
    /// and `rsn-serve`'s `submit` use it. Unlimited by default; plain
    /// [`execute`](crate::session::QuerySession::execute) always runs exact
    /// regardless.
    pub default_budget: QueryBudget,
}

impl Default for ExecutionPolicy {
    fn default() -> Self {
        ExecutionPolicy {
            algorithm: AlgorithmChoice::Auto,
            filter: RangeFilterChoice::Auto,
            parallelism: 1,
            work_stealing: true,
            expand_strategy: ExpandStrategy::default(),
            max_candidates: 12,
            default_budget: QueryBudget::unlimited(),
        }
    }
}

impl ExecutionPolicy {
    /// The default policy: calibrated `Auto` algorithm and filter, serial
    /// execution, work stealing armed (moot at parallelism 1), default local
    /// knobs, unlimited budget.
    pub fn new() -> Self {
        ExecutionPolicy::default()
    }

    /// Sets the default search algorithm for `Auto` queries.
    pub fn with_algorithm(mut self, algorithm: AlgorithmChoice) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the default range-filter strategy for `Auto` queries.
    pub fn with_filter(mut self, filter: RangeFilterChoice) -> Self {
        self.filter = filter;
        self
    }

    /// Sets the global-search worker count (`1` = serial, `0` = all cores).
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Enables or disables work stealing between global-search workers.
    pub fn with_work_stealing(mut self, on: bool) -> Self {
        self.work_stealing = on;
        self
    }

    /// Sets the local framework's candidate-selection strategy.
    pub fn with_expand_strategy(mut self, strategy: ExpandStrategy) -> Self {
        self.expand_strategy = strategy;
        self
    }

    /// Sets the local framework's candidate budget (minimum 1).
    pub fn with_max_candidates(mut self, max_candidates: usize) -> Self {
        self.max_candidates = max_candidates.max(1);
        self
    }

    /// Sets the budget applied when the caller passes none.
    pub fn with_default_budget(mut self, budget: QueryBudget) -> Self {
        self.default_budget = budget;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_serial_auto_unlimited() {
        let p = ExecutionPolicy::new();
        assert_eq!(p.algorithm, AlgorithmChoice::Auto);
        assert_eq!(p.filter, RangeFilterChoice::Auto);
        assert_eq!(p.parallelism, 1);
        assert!(p.work_stealing);
        assert_eq!(p.max_candidates, 12);
        assert!(p.default_budget.is_unlimited());
    }

    #[test]
    fn builder_sets_every_knob() {
        let p = ExecutionPolicy::new()
            .with_algorithm(AlgorithmChoice::Local)
            .with_filter(RangeFilterChoice::DijkstraSweep)
            .with_parallelism(4)
            .with_work_stealing(false)
            .with_max_candidates(0) // clamped to 1
            .with_default_budget(QueryBudget::new().with_work_limit(10));
        assert_eq!(p.algorithm, AlgorithmChoice::Local);
        assert_eq!(p.filter, RangeFilterChoice::DijkstraSweep);
        assert_eq!(p.parallelism, 4);
        assert!(!p.work_stealing);
        assert_eq!(p.max_candidates, 1);
        assert_eq!(p.default_budget.work_limit, Some(10));
    }
}

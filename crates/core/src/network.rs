//! The multi-attributed road-social network `(G_r, G_s)`.

use crate::error::MacError;
use rsn_graph::graph::{Graph, VertexId};
use rsn_road::network::{Location, RoadNetwork};

/// A road-social network: a social graph whose users carry a location in a
/// road network and a d-dimensional attribute vector (Section II-A).
#[derive(Debug, Clone)]
pub struct RoadSocialNetwork {
    social: Graph,
    road: RoadNetwork,
    /// `locations[v]` = location of social user `v` in the road network.
    locations: Vec<Location>,
    /// `attrs[v]` = d-dimensional attribute vector of social user `v`.
    attrs: Vec<Vec<f64>>,
    dim: usize,
}

impl RoadSocialNetwork {
    /// Assembles and validates a road-social network.
    ///
    /// Requirements: one location and one attribute vector per social user,
    /// all attribute vectors of equal dimensionality `d ≥ 1`, and every
    /// location valid in the road network.
    pub fn new(
        social: Graph,
        road: RoadNetwork,
        locations: Vec<Location>,
        attrs: Vec<Vec<f64>>,
    ) -> Result<Self, MacError> {
        let n = social.num_vertices();
        if locations.len() != n {
            return Err(MacError::InconsistentNetwork(format!(
                "{} locations for {} users",
                locations.len(),
                n
            )));
        }
        if attrs.len() != n {
            return Err(MacError::InconsistentNetwork(format!(
                "{} attribute vectors for {} users",
                attrs.len(),
                n
            )));
        }
        let dim = attrs.first().map(|a| a.len()).unwrap_or(0);
        if n > 0 && dim == 0 {
            return Err(MacError::InconsistentNetwork(
                "attribute vectors must have at least one dimension".into(),
            ));
        }
        for (v, a) in attrs.iter().enumerate() {
            if a.len() != dim {
                return Err(MacError::InconsistentNetwork(format!(
                    "user {v} has {} attributes, expected {dim}",
                    a.len()
                )));
            }
            if a.iter().any(|x| !x.is_finite()) {
                return Err(MacError::InconsistentNetwork(format!(
                    "user {v} has a non-finite attribute value"
                )));
            }
        }
        for loc in &locations {
            road.validate_location(loc)?;
        }
        Ok(RoadSocialNetwork {
            social,
            road,
            locations,
            attrs,
            dim,
        })
    }

    /// The social graph `G_s`.
    pub fn social(&self) -> &Graph {
        &self.social
    }

    /// The road network `G_r`.
    pub fn road(&self) -> &RoadNetwork {
        &self.road
    }

    /// Number of social users.
    pub fn num_users(&self) -> usize {
        self.social.num_vertices()
    }

    /// Attribute dimensionality `d`.
    pub fn attribute_dim(&self) -> usize {
        self.dim
    }

    /// Location `L(v)` of a user.
    pub fn location(&self, v: VertexId) -> &Location {
        &self.locations[v as usize]
    }

    /// All user locations.
    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// Attribute vector `X(v)` of a user.
    pub fn attributes(&self, v: VertexId) -> &[f64] {
        &self.attrs[v as usize]
    }

    /// All attribute vectors.
    pub fn all_attributes(&self) -> &[Vec<f64>] {
        &self.attrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_road() -> RoadNetwork {
        RoadNetwork::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)])
    }

    #[test]
    fn builds_valid_network() {
        let social = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let road = tiny_road();
        let locations = vec![
            Location::vertex(0),
            Location::vertex(1),
            Location::vertex(2),
        ];
        let attrs = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let rsn = RoadSocialNetwork::new(social, road, locations, attrs).unwrap();
        assert_eq!(rsn.num_users(), 3);
        assert_eq!(rsn.attribute_dim(), 2);
        assert_eq!(rsn.attributes(1), &[3.0, 4.0]);
        assert_eq!(rsn.location(2), &Location::vertex(2));
    }

    #[test]
    fn rejects_mismatched_lengths() {
        let social = Graph::from_edges(2, &[(0, 1)]);
        let road = tiny_road();
        let err = RoadSocialNetwork::new(
            social.clone(),
            road.clone(),
            vec![Location::vertex(0)],
            vec![vec![1.0], vec![2.0]],
        );
        assert!(matches!(err, Err(MacError::InconsistentNetwork(_))));
        let err2 = RoadSocialNetwork::new(
            social,
            road,
            vec![Location::vertex(0), Location::vertex(1)],
            vec![vec![1.0]],
        );
        assert!(matches!(err2, Err(MacError::InconsistentNetwork(_))));
    }

    #[test]
    fn rejects_ragged_or_invalid_attributes() {
        let social = Graph::from_edges(2, &[(0, 1)]);
        let road = tiny_road();
        let locations = vec![Location::vertex(0), Location::vertex(1)];
        let err = RoadSocialNetwork::new(
            social.clone(),
            road.clone(),
            locations.clone(),
            vec![vec![1.0, 2.0], vec![3.0]],
        );
        assert!(matches!(err, Err(MacError::InconsistentNetwork(_))));
        let err2 = RoadSocialNetwork::new(
            social,
            road,
            locations,
            vec![vec![1.0, f64::NAN], vec![3.0, 4.0]],
        );
        assert!(matches!(err2, Err(MacError::InconsistentNetwork(_))));
    }

    #[test]
    fn rejects_invalid_locations() {
        let social = Graph::from_edges(2, &[(0, 1)]);
        let road = tiny_road();
        let err = RoadSocialNetwork::new(
            social,
            road,
            vec![Location::vertex(0), Location::vertex(9)],
            vec![vec![1.0], vec![2.0]],
        );
        assert!(matches!(err, Err(MacError::Road(_))));
    }
}

//! The multi-attributed road-social network `(G_r, G_s)`.

use crate::error::MacError;
use rsn_graph::graph::{Graph, VertexId};
use rsn_road::gtree::GTree;
use rsn_road::network::{Location, RoadNetwork};
use rsn_road::oracle::DistanceOracle;
#[allow(deprecated)]
use rsn_road::oracle::OracleChoice;
use rsn_road::rangefilter::{resolve_auto, RangeFilter, RangeFilterChoice};

/// A road-social network: a social graph whose users carry a location in a
/// road network and a d-dimensional attribute vector (Section II-A).
///
/// A network optionally carries a prebuilt [`GTree`] index over its road
/// network ([`with_gtree_index`](Self::with_gtree_index)); queries then serve
/// the Lemma-1 range filter and all `D_Q` evaluations from the G-tree instead
/// of running per-query Dijkstra sweeps.
#[derive(Debug, Clone)]
pub struct RoadSocialNetwork {
    social: Graph,
    road: RoadNetwork,
    /// `locations[v]` = location of social user `v` in the road network.
    locations: Vec<Location>,
    /// `attrs[v]` = d-dimensional attribute vector of social user `v`.
    attrs: Vec<Vec<f64>>,
    dim: usize,
    /// Optional hierarchical distance index over `road`.
    gtree: Option<GTree>,
}

impl RoadSocialNetwork {
    /// Assembles and validates a road-social network.
    ///
    /// Requirements: one location and one attribute vector per social user,
    /// all attribute vectors of equal dimensionality `d ≥ 1`, and every
    /// location valid in the road network.
    pub fn new(
        social: Graph,
        road: RoadNetwork,
        locations: Vec<Location>,
        attrs: Vec<Vec<f64>>,
    ) -> Result<Self, MacError> {
        let n = social.num_vertices();
        if locations.len() != n {
            return Err(MacError::InconsistentNetwork(format!(
                "{} locations for {} users",
                locations.len(),
                n
            )));
        }
        if attrs.len() != n {
            return Err(MacError::InconsistentNetwork(format!(
                "{} attribute vectors for {} users",
                attrs.len(),
                n
            )));
        }
        let dim = attrs.first().map(|a| a.len()).unwrap_or(0);
        if n > 0 && dim == 0 {
            return Err(MacError::InconsistentNetwork(
                "attribute vectors must have at least one dimension".into(),
            ));
        }
        for (v, a) in attrs.iter().enumerate() {
            if a.len() != dim {
                return Err(MacError::InconsistentNetwork(format!(
                    "user {v} has {} attributes, expected {dim}",
                    a.len()
                )));
            }
            if a.iter().any(|x| !x.is_finite()) {
                return Err(MacError::InconsistentNetwork(format!(
                    "user {v} has a non-finite attribute value"
                )));
            }
        }
        for loc in &locations {
            road.validate_location(loc)?;
        }
        Ok(RoadSocialNetwork {
            social,
            road,
            locations,
            attrs,
            dim,
            gtree: None,
        })
    }

    /// Builds (or rebuilds) the G-tree index over the road network, enabling
    /// the G-tree distance oracle for subsequent queries.
    pub fn with_gtree_index(mut self) -> Self {
        self.gtree = Some(GTree::build(&self.road));
        self
    }

    /// Like [`with_gtree_index`](Self::with_gtree_index) with an explicit
    /// leaf capacity (G-tree fan-out tuning knob).
    pub fn with_gtree_index_capacity(mut self, leaf_capacity: usize) -> Self {
        self.gtree = Some(GTree::build_with_capacity(&self.road, leaf_capacity));
        self
    }

    /// The G-tree index, when one has been built.
    pub fn gtree(&self) -> Option<&GTree> {
        self.gtree.as_ref()
    }

    /// Resolves the distance oracle for a query's [`OracleChoice`].
    ///
    /// An explicit `GTree` request on a network without an index falls back
    /// to Dijkstra; the result is identical either way — the choice is purely
    /// performance. `Auto` currently resolves to Dijkstra for *point-wise*
    /// evaluations; the set-valued Lemma-1 filter goes through
    /// [`range_filter`](Self::range_filter) instead.
    #[allow(deprecated)]
    pub fn distance_oracle(&self, choice: OracleChoice) -> DistanceOracle<'_> {
        match (choice, &self.gtree) {
            (OracleChoice::GTree, Some(tree)) => DistanceOracle::GTree(tree),
            _ => DistanceOracle::dijkstra(),
        }
    }

    /// Resolves the Lemma-1 range filter for a query's [`RangeFilterChoice`],
    /// given the query context (`|Q|` and `t`) the calibrated `Auto` rule
    /// needs.
    ///
    /// Every strategy is exact, so the resolution is purely a performance
    /// decision. G-tree strategies require a built index and fall back to the
    /// bounded Dijkstra sweep without one. `Auto` goes through
    /// [`rsn_road::rangefilter::resolve_auto`]: the t-bounded sweep wherever
    /// the radius-t ball is small (every laptop-scale preset), the
    /// multi-seed batched G-tree walk when an index exists and the estimated
    /// ball dwarfs the indexed work (see `BENCH_PR3.json` for the crossover
    /// measurements behind the calibration).
    pub fn range_filter(
        &self,
        choice: RangeFilterChoice,
        num_query_locations: usize,
        t: f64,
    ) -> RangeFilter<'_> {
        let resolved = match choice {
            RangeFilterChoice::Auto => resolve_auto(
                &self.road,
                self.gtree.as_ref(),
                num_query_locations,
                t,
                self.num_users(),
            ),
            explicit => explicit,
        };
        match (resolved, &self.gtree) {
            (RangeFilterChoice::GTreePoint, Some(tree)) => RangeFilter::GTreePoint(tree),
            (RangeFilterChoice::GTreeLeafBatched, Some(tree)) => {
                RangeFilter::GTreeLeafBatched(tree)
            }
            (RangeFilterChoice::GTreeMultiSeedBatched, Some(tree)) => {
                RangeFilter::GTreeMultiSeedBatched(tree)
            }
            _ => RangeFilter::DijkstraSweep,
        }
    }

    /// The social graph `G_s`.
    pub fn social(&self) -> &Graph {
        &self.social
    }

    /// The road network `G_r`.
    pub fn road(&self) -> &RoadNetwork {
        &self.road
    }

    /// Number of social users.
    pub fn num_users(&self) -> usize {
        self.social.num_vertices()
    }

    /// Attribute dimensionality `d`.
    pub fn attribute_dim(&self) -> usize {
        self.dim
    }

    /// Location `L(v)` of a user.
    pub fn location(&self, v: VertexId) -> &Location {
        &self.locations[v as usize]
    }

    /// All user locations.
    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// Attribute vector `X(v)` of a user.
    pub fn attributes(&self, v: VertexId) -> &[f64] {
        &self.attrs[v as usize]
    }

    /// All attribute vectors.
    pub fn all_attributes(&self) -> &[Vec<f64>] {
        &self.attrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_road() -> RoadNetwork {
        RoadNetwork::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)])
    }

    #[test]
    fn builds_valid_network() {
        let social = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let road = tiny_road();
        let locations = vec![
            Location::vertex(0),
            Location::vertex(1),
            Location::vertex(2),
        ];
        let attrs = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let rsn = RoadSocialNetwork::new(social, road, locations, attrs).unwrap();
        assert_eq!(rsn.num_users(), 3);
        assert_eq!(rsn.attribute_dim(), 2);
        assert_eq!(rsn.attributes(1), &[3.0, 4.0]);
        assert_eq!(rsn.location(2), &Location::vertex(2));
    }

    #[test]
    fn rejects_mismatched_lengths() {
        let social = Graph::from_edges(2, &[(0, 1)]);
        let road = tiny_road();
        let err = RoadSocialNetwork::new(
            social.clone(),
            road.clone(),
            vec![Location::vertex(0)],
            vec![vec![1.0], vec![2.0]],
        );
        assert!(matches!(err, Err(MacError::InconsistentNetwork(_))));
        let err2 = RoadSocialNetwork::new(
            social,
            road,
            vec![Location::vertex(0), Location::vertex(1)],
            vec![vec![1.0]],
        );
        assert!(matches!(err2, Err(MacError::InconsistentNetwork(_))));
    }

    #[test]
    fn rejects_ragged_or_invalid_attributes() {
        let social = Graph::from_edges(2, &[(0, 1)]);
        let road = tiny_road();
        let locations = vec![Location::vertex(0), Location::vertex(1)];
        let err = RoadSocialNetwork::new(
            social.clone(),
            road.clone(),
            locations.clone(),
            vec![vec![1.0, 2.0], vec![3.0]],
        );
        assert!(matches!(err, Err(MacError::InconsistentNetwork(_))));
        let err2 = RoadSocialNetwork::new(
            social,
            road,
            locations,
            vec![vec![1.0, f64::NAN], vec![3.0, 4.0]],
        );
        assert!(matches!(err2, Err(MacError::InconsistentNetwork(_))));
    }

    #[test]
    fn rejects_invalid_locations() {
        let social = Graph::from_edges(2, &[(0, 1)]);
        let road = tiny_road();
        let err = RoadSocialNetwork::new(
            social,
            road,
            vec![Location::vertex(0), Location::vertex(9)],
            vec![vec![1.0], vec![2.0]],
        );
        assert!(matches!(err, Err(MacError::Road(_))));
    }
}

//! The multi-attributed road-social network `(G_r, G_s)`.

use crate::error::MacError;
use rsn_graph::graph::{Graph, VertexId};
use rsn_road::gtree::{GTree, GTreeUpdateStats};
use rsn_road::network::{EdgeUpdate, Location, RoadNetwork};
use rsn_road::oracle::DistanceOracle;
use rsn_road::rangefilter::{resolve_auto, RangeFilter, RangeFilterChoice};
use std::sync::Arc;

/// What [`RoadSocialNetwork::apply_edge_updates`] changed beyond the edge
/// weights themselves.
#[derive(Debug, Clone, Default)]
pub struct EdgeUpdateOutcome {
    /// G-tree incremental-refresh statistics (`None` without an index).
    pub gtree: Option<GTreeUpdateStats>,
    /// Users whose location sits part-way along one of the reweighted edges:
    /// their far-endpoint seed offsets (`w - offset`) changed with the
    /// weight, so any grouped filter seeds must be refreshed.
    pub users_on_reweighted_edges: Vec<VertexId>,
}

/// A road-social network: a social graph whose users carry a location in a
/// road network and a d-dimensional attribute vector (Section II-A).
///
/// A network optionally carries a prebuilt [`GTree`] index over its road
/// network ([`with_gtree_index`](Self::with_gtree_index)); queries then serve
/// the Lemma-1 range filter and all `D_Q` evaluations from the G-tree instead
/// of running per-query Dijkstra sweeps.
/// Cloning a network is cheap: the heavy components — social graph, road
/// network, attribute table, G-tree index — live behind [`Arc`]s and are
/// shared until a mutation actually touches them (copy-on-write via
/// [`Arc::make_mut`]). A user-churn delta therefore copies only the
/// per-user `locations` vector; the multi-megabyte G-tree matrices are
/// deep-copied only when an edge reweight must rewrite them while a previous
/// epoch still holds the old version.
#[derive(Debug, Clone)]
pub struct RoadSocialNetwork {
    social: Arc<Graph>,
    road: Arc<RoadNetwork>,
    /// `locations[v]` = location of social user `v` in the road network.
    locations: Vec<Location>,
    /// `attrs[v]` = d-dimensional attribute vector of social user `v`.
    attrs: Arc<Vec<Vec<f64>>>,
    dim: usize,
    /// Optional hierarchical distance index over `road`.
    gtree: Option<Arc<GTree>>,
}

impl RoadSocialNetwork {
    /// Assembles and validates a road-social network.
    ///
    /// Requirements: one location and one attribute vector per social user,
    /// all attribute vectors of equal dimensionality `d ≥ 1`, and every
    /// location valid in the road network.
    pub fn new(
        social: Graph,
        road: RoadNetwork,
        locations: Vec<Location>,
        attrs: Vec<Vec<f64>>,
    ) -> Result<Self, MacError> {
        let n = social.num_vertices();
        if locations.len() != n {
            return Err(MacError::InconsistentNetwork(format!(
                "{} locations for {} users",
                locations.len(),
                n
            )));
        }
        if attrs.len() != n {
            return Err(MacError::InconsistentNetwork(format!(
                "{} attribute vectors for {} users",
                attrs.len(),
                n
            )));
        }
        let dim = attrs.first().map(|a| a.len()).unwrap_or(0);
        if n > 0 && dim == 0 {
            return Err(MacError::InconsistentNetwork(
                "attribute vectors must have at least one dimension".into(),
            ));
        }
        for (v, a) in attrs.iter().enumerate() {
            if a.len() != dim {
                return Err(MacError::InconsistentNetwork(format!(
                    "user {v} has {} attributes, expected {dim}",
                    a.len()
                )));
            }
            if a.iter().any(|x| !x.is_finite()) {
                return Err(MacError::InconsistentNetwork(format!(
                    "user {v} has a non-finite attribute value"
                )));
            }
        }
        for loc in &locations {
            road.validate_location(loc)?;
        }
        Ok(RoadSocialNetwork {
            social: Arc::new(social),
            road: Arc::new(road),
            locations,
            attrs: Arc::new(attrs),
            dim,
            gtree: None,
        })
    }

    /// Builds (or rebuilds) the G-tree index over the road network, enabling
    /// the G-tree distance oracle for subsequent queries.
    pub fn with_gtree_index(mut self) -> Self {
        self.gtree = Some(Arc::new(GTree::build(&self.road)));
        self
    }

    /// Like [`with_gtree_index`](Self::with_gtree_index) with an explicit
    /// leaf capacity (G-tree fan-out tuning knob).
    pub fn with_gtree_index_capacity(mut self, leaf_capacity: usize) -> Self {
        self.gtree = Some(Arc::new(GTree::build_with_capacity(
            &self.road,
            leaf_capacity,
        )));
        self
    }

    /// Like [`with_gtree_index_capacity`](Self::with_gtree_index_capacity)
    /// with an explicit partition fanout as well (`fanout = 2` builds the
    /// binary-bisection reference tree; queries are identical across fanouts,
    /// only build time and matrix sizes differ).
    pub fn with_gtree_index_params(mut self, leaf_capacity: usize, fanout: usize) -> Self {
        self.gtree = Some(Arc::new(GTree::build_with_params(
            &self.road,
            leaf_capacity,
            fanout,
        )));
        self
    }

    /// The G-tree index, when one has been built.
    pub fn gtree(&self) -> Option<&GTree> {
        self.gtree.as_deref()
    }

    /// Applies a batch of road-edge **reweights** to the network, refreshing
    /// the G-tree index incrementally (dirty leaf-to-root matrix paths only,
    /// [`GTree::apply_edge_updates`]) instead of rebuilding it.
    ///
    /// All updates are validated first — every named edge must exist with a
    /// finite non-negative weight, and no user's on-edge location may be left
    /// with an offset beyond its edge's new length — so an invalid batch is
    /// rejected whole and the network is untouched. Returns the index's
    /// update statistics (`None` without an index) and the users located on
    /// the reweighted edges (their grouped filter seeds carry partial-edge
    /// offsets that the new weights changed — see
    /// [`rsn_road::rangefilter::add_user_target`]).
    pub fn apply_edge_updates(
        &mut self,
        updates: &[EdgeUpdate],
    ) -> Result<EdgeUpdateOutcome, MacError> {
        // Stranded-offset validation + affected-user collection: a user
        // part-way along a reweighted edge keeps its absolute offset from its
        // location's `u`, so the final weight must still cover it (the last
        // update of an edge wins). Both the update endpoints and a stored
        // `Location::OnEdge` may name the edge in either order, so everything
        // is canonicalized to `(min, max)` before matching.
        let canonical = |a: u32, b: u32| if a < b { (a, b) } else { (b, a) };
        let mut final_weight: std::collections::HashMap<(u32, u32), f64> =
            std::collections::HashMap::new();
        for upd in updates {
            final_weight.insert(canonical(upd.u, upd.v), upd.weight);
        }
        let mut users_on_reweighted_edges = Vec::new();
        for (user, loc) in self.locations.iter().enumerate() {
            if let Location::OnEdge { u, v, offset } = *loc {
                if let Some(&w) = final_weight.get(&canonical(u, v)) {
                    if offset > w {
                        return Err(MacError::StrandedOnEdgeUser {
                            user: user as VertexId,
                            offset,
                            new_length: w,
                        });
                    }
                    users_on_reweighted_edges.push(user as VertexId);
                }
            }
        }
        // The road network validates the whole batch (existence, weight
        // range) before mutating, so an invalid entry still rejects the
        // delta with this network untouched.
        // Copy-on-write: a previous epoch may still share these Arcs, so
        // the mutating path clones them lazily (`make_mut`) — exactly once,
        // and only for edge-reweight deltas.
        Arc::make_mut(&mut self.road).apply_edge_updates(updates)?;
        let road = Arc::clone(&self.road);
        let gtree = self
            .gtree
            .as_mut()
            .map(|tree| Arc::make_mut(tree).apply_edge_updates(&road, updates));
        Ok(EdgeUpdateOutcome {
            gtree,
            users_on_reweighted_edges,
        })
    }

    /// Moves a user to a new (validated) location, returning the previous
    /// one. Callers maintaining grouped filter seeds must move the user's
    /// rows too ([`rsn_road::rangefilter::remove_user_target`] /
    /// [`add_user_target`](rsn_road::rangefilter::add_user_target)).
    pub fn set_user_location(
        &mut self,
        user: VertexId,
        location: Location,
    ) -> Result<Location, MacError> {
        if (user as usize) >= self.locations.len() {
            return Err(MacError::QueryVertexOutOfRange {
                vertex: user,
                num_vertices: self.locations.len(),
            });
        }
        self.road.validate_location(&location)?;
        Ok(std::mem::replace(
            &mut self.locations[user as usize],
            location,
        ))
    }

    /// The point-wise distance oracle this network serves: the G-tree when an
    /// index is built, per-request bounded Dijkstra otherwise. Both are
    /// exact — which backend answers is purely a performance property of the
    /// network. The set-valued Lemma-1 filter goes through
    /// [`range_filter`](Self::range_filter) instead.
    pub fn distance_oracle(&self) -> DistanceOracle<'_> {
        match &self.gtree {
            Some(tree) => DistanceOracle::GTree(tree),
            None => DistanceOracle::dijkstra(),
        }
    }

    /// Resolves the Lemma-1 range filter for a query's [`RangeFilterChoice`],
    /// given the query context (`|Q|` and `t`) the calibrated `Auto` rule
    /// needs.
    ///
    /// Every strategy is exact, so the resolution is purely a performance
    /// decision. G-tree strategies require a built index and fall back to the
    /// bounded Dijkstra sweep without one. `Auto` goes through
    /// [`rsn_road::rangefilter::resolve_auto`]: the t-bounded sweep wherever
    /// the radius-t ball is small (every laptop-scale preset), the
    /// multi-seed batched G-tree walk when an index exists and the estimated
    /// ball dwarfs the indexed work (see `BENCH_PR3.json` for the crossover
    /// measurements behind the calibration).
    pub fn range_filter(
        &self,
        choice: RangeFilterChoice,
        num_query_locations: usize,
        t: f64,
    ) -> RangeFilter<'_> {
        let resolved = match choice {
            RangeFilterChoice::Auto => resolve_auto(
                &self.road,
                self.gtree.as_deref(),
                num_query_locations,
                t,
                self.num_users(),
            ),
            explicit => explicit,
        };
        match (resolved, &self.gtree) {
            (RangeFilterChoice::GTreePoint, Some(tree)) => RangeFilter::GTreePoint(tree),
            (RangeFilterChoice::GTreeLeafBatched, Some(tree)) => {
                RangeFilter::GTreeLeafBatched(tree)
            }
            (RangeFilterChoice::GTreeMultiSeedBatched, Some(tree)) => {
                RangeFilter::GTreeMultiSeedBatched(tree)
            }
            _ => RangeFilter::DijkstraSweep,
        }
    }

    /// The social graph `G_s`.
    pub fn social(&self) -> &Graph {
        &self.social
    }

    /// The road network `G_r`.
    pub fn road(&self) -> &RoadNetwork {
        &self.road
    }

    /// Number of social users.
    pub fn num_users(&self) -> usize {
        self.social.num_vertices()
    }

    /// Attribute dimensionality `d`.
    pub fn attribute_dim(&self) -> usize {
        self.dim
    }

    /// Location `L(v)` of a user.
    pub fn location(&self, v: VertexId) -> &Location {
        &self.locations[v as usize]
    }

    /// All user locations.
    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// Attribute vector `X(v)` of a user.
    pub fn attributes(&self, v: VertexId) -> &[f64] {
        &self.attrs[v as usize]
    }

    /// All attribute vectors.
    pub fn all_attributes(&self) -> &[Vec<f64>] {
        &self.attrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_road() -> RoadNetwork {
        RoadNetwork::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)])
    }

    #[test]
    fn builds_valid_network() {
        let social = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let road = tiny_road();
        let locations = vec![
            Location::vertex(0),
            Location::vertex(1),
            Location::vertex(2),
        ];
        let attrs = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let rsn = RoadSocialNetwork::new(social, road, locations, attrs).unwrap();
        assert_eq!(rsn.num_users(), 3);
        assert_eq!(rsn.attribute_dim(), 2);
        assert_eq!(rsn.attributes(1), &[3.0, 4.0]);
        assert_eq!(rsn.location(2), &Location::vertex(2));
    }

    #[test]
    fn rejects_mismatched_lengths() {
        let social = Graph::from_edges(2, &[(0, 1)]);
        let road = tiny_road();
        let err = RoadSocialNetwork::new(
            social.clone(),
            road.clone(),
            vec![Location::vertex(0)],
            vec![vec![1.0], vec![2.0]],
        );
        assert!(matches!(err, Err(MacError::InconsistentNetwork(_))));
        let err2 = RoadSocialNetwork::new(
            social,
            road,
            vec![Location::vertex(0), Location::vertex(1)],
            vec![vec![1.0]],
        );
        assert!(matches!(err2, Err(MacError::InconsistentNetwork(_))));
    }

    #[test]
    fn rejects_ragged_or_invalid_attributes() {
        let social = Graph::from_edges(2, &[(0, 1)]);
        let road = tiny_road();
        let locations = vec![Location::vertex(0), Location::vertex(1)];
        let err = RoadSocialNetwork::new(
            social.clone(),
            road.clone(),
            locations.clone(),
            vec![vec![1.0, 2.0], vec![3.0]],
        );
        assert!(matches!(err, Err(MacError::InconsistentNetwork(_))));
        let err2 = RoadSocialNetwork::new(
            social,
            road,
            locations,
            vec![vec![1.0, f64::NAN], vec![3.0, 4.0]],
        );
        assert!(matches!(err2, Err(MacError::InconsistentNetwork(_))));
    }

    #[test]
    fn edge_updates_refresh_the_index_and_report_on_edge_users() {
        let social = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let road = tiny_road();
        let locations = vec![
            Location::vertex(0),
            Location::OnEdge {
                u: 1,
                v: 2,
                offset: 1.5,
            },
            Location::vertex(2),
        ];
        let attrs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let mut rsn = RoadSocialNetwork::new(social, road, locations, attrs)
            .unwrap()
            .with_gtree_index_capacity(4);
        // Shrinking edge (1,2) below user 1's offset must reject the batch
        // whole and leave the network untouched.
        let err = rsn.apply_edge_updates(&[EdgeUpdate::new(1, 2, 1.0)]);
        assert!(matches!(
            err,
            Err(MacError::StrandedOnEdgeUser { user: 1, .. })
        ));
        assert_eq!(rsn.road().edge_weight(1, 2), Some(2.0));
        // A valid reweight refreshes the index and names the on-edge user.
        let outcome = rsn
            .apply_edge_updates(&[EdgeUpdate::new(1, 2, 5.0)])
            .unwrap();
        assert_eq!(outcome.users_on_reweighted_edges, vec![1]);
        let stats = outcome.gtree.expect("indexed network reports stats");
        assert!(stats.dirty_leaves + stats.dirty_internal > 0);
        assert_eq!(rsn.road().edge_weight(1, 2), Some(5.0));
        let tree = rsn.gtree().unwrap();
        assert!((tree.dist(0, 2) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn set_user_location_validates_and_returns_the_old_location() {
        let social = Graph::from_edges(2, &[(0, 1)]);
        let mut rsn = RoadSocialNetwork::new(
            social,
            tiny_road(),
            vec![Location::vertex(0), Location::vertex(1)],
            vec![vec![1.0], vec![2.0]],
        )
        .unwrap();
        let old = rsn.set_user_location(1, Location::vertex(2)).unwrap();
        assert_eq!(old, Location::vertex(1));
        assert_eq!(rsn.location(1), &Location::vertex(2));
        assert!(matches!(
            rsn.set_user_location(9, Location::vertex(0)),
            Err(MacError::QueryVertexOutOfRange { .. })
        ));
        assert!(matches!(
            rsn.set_user_location(0, Location::vertex(99)),
            Err(MacError::Road(_))
        ));
    }

    #[test]
    fn rejects_invalid_locations() {
        let social = Graph::from_edges(2, &[(0, 1)]);
        let road = tiny_road();
        let err = RoadSocialNetwork::new(
            social,
            road,
            vec![Location::vertex(0), Location::vertex(9)],
            vec![vec![1.0], vec![2.0]],
        );
        assert!(matches!(err, Err(MacError::Road(_))));
    }
}

//! # rsn-core
//!
//! The multi-attributed community (MAC) model and search algorithms of
//! *"Multi-attributed Community Search in Road-social Networks"* (ICDE 2021).
//!
//! ## Model
//!
//! A road-social network pairs a social graph (users, friendships, a
//! d-dimensional attribute vector per user) with a road network in which every
//! user has a location. Given query users `Q`, a coreness threshold `k`, a
//! query-distance threshold `t`, and a region `R` of the preference domain,
//! a **MAC** (Definition 5) is a connected k-core containing `Q` whose query
//! distance is at most `t` and that is not r-dominated (Definition 4) by any
//! super-community; a **non-contained MAC** additionally has no r-dominating
//! sub-community (Definition 6). Because community scores vary with the weight
//! vector, the answer is a partition of `R`, each cell paired with its top-j
//! MACs (Problem 1) or its non-contained MAC (Problem 2).
//!
//! ## Algorithms
//!
//! * [`GlobalSearch`] — the DFS-based Algorithm 1 (`GS-T` / `GS-NC`): peel the
//!   maximal (k,t)-core guided by an arrangement of competitor half-spaces.
//! * [`LocalSearch`] — the local framework of Algorithms 3–5 (`LS-T` /
//!   `LS-NC`): expand candidates around `Q` with the Eq. 3 / Eq. 4
//!   priorities, then verify them against the r-dominance graph.
//! * [`peel`] — the fixed-weight peeling oracle shared by both algorithms and
//!   by the test suite.

pub mod context;
pub mod error;
pub mod global;
pub mod ktcore;
pub mod local;
pub mod network;
pub mod peel;
pub mod query;
pub mod result;

pub use context::SearchContext;
pub use error::MacError;
pub use global::GlobalSearch;
pub use local::{ExpandStrategy, LocalSearch};
pub use network::RoadSocialNetwork;
pub use query::MacQuery;
pub use result::{CellResult, Community, MacSearchResult, SearchStats};

//! # rsn-core
//!
//! The multi-attributed community (MAC) model and search algorithms of
//! *"Multi-attributed Community Search in Road-social Networks"* (ICDE 2021).
//!
//! ## Model
//!
//! A road-social network pairs a social graph (users, friendships, a
//! d-dimensional attribute vector per user) with a road network in which every
//! user has a location. Given query users `Q`, a coreness threshold `k`, a
//! query-distance threshold `t`, and a region `R` of the preference domain,
//! a **MAC** (Definition 5) is a connected k-core containing `Q` whose query
//! distance is at most `t` and that is not r-dominated (Definition 4) by any
//! super-community; a **non-contained MAC** additionally has no r-dominating
//! sub-community (Definition 6). Because community scores vary with the weight
//! vector, the answer is a partition of `R`, each cell paired with its top-j
//! MACs (Problem 1) or its non-contained MAC (Problem 2).
//!
//! ## Serving API
//!
//! MAC search is an online query service over a fixed network, and the API is
//! shaped accordingly: build a [`MacEngine`] **once** per network (it owns
//! the network behind an `Arc`, pre-groups the G-tree user targets, and runs
//! the measured `Auto` calibration probe), open one [`QuerySession`] per
//! serving thread, and execute many queries through it — every network-sized
//! buffer is session-held and reused, so the steady state is allocation-free.
//! When the road network changes (traffic reweights, user churn), apply a
//! [`NetworkDelta`] through [`MacEngine::apply_updates`]: the engine patches
//! its prepared state incrementally and swaps in a new epoch; live sessions
//! pick it up at their next query without losing any scratch.
//!
//! ```
//! use rsn_core::{MacEngine, MacQuery};
//! # use rsn_geom::region::PrefRegion;
//! # use rsn_graph::graph::Graph;
//! # use rsn_road::network::{Location, RoadNetwork};
//! # let social = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)]);
//! # let road = RoadNetwork::from_edges(2, &[(0, 1, 1.0)]);
//! # let locations = vec![Location::vertex(0); 4];
//! # let attrs = vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![3.0, 3.0], vec![1.5, 2.5]];
//! # let rsn = rsn_core::RoadSocialNetwork::new(social, road, locations, attrs).unwrap();
//! let engine = MacEngine::build(rsn);          // once per network
//! let mut session = engine.session();          // once per thread
//! # let region = PrefRegion::from_ranges(&[(0.2, 0.8)]).unwrap();
//! # let query = MacQuery::new(vec![0], 2, 10.0, region);
//! let result = session.execute(&query)?;       // many times
//! # assert!(!result.is_empty());
//! # Ok::<(), rsn_core::MacError>(())
//! ```
//!
//! ## Algorithms
//!
//! * [`GlobalSearch`] — the DFS-based Algorithm 1 (`GS-T` / `GS-NC`): peel the
//!   maximal (k,t)-core guided by an arrangement of competitor half-spaces.
//! * [`LocalSearch`] — the local framework of Algorithms 3–5 (`LS-T` /
//!   `LS-NC`): expand candidates around `Q` with the Eq. 3 / Eq. 4
//!   priorities, then verify them against the r-dominance graph.
//! * [`peel`] — the fixed-weight peeling oracle shared by both algorithms and
//!   by the test suite.
//!
//! `GlobalSearch::new(...)` / `LocalSearch::new(...)` survive as one-shot
//! wrappers (fresh scratch per call) for scripts and tests; a
//! [`QuerySession`] resolves `AlgorithmChoice::Auto` between them through
//! the engine's calibration.

pub mod budget;
pub mod context;
pub mod ctxcache;
pub mod engine;
pub mod error;
pub mod global;
pub mod ktcore;
pub mod local;
pub mod network;
pub mod peel;
pub mod policy;
pub mod query;
pub mod result;
pub mod session;

pub use budget::{BudgetTicker, ExhaustionCause, QueryBudget};
pub use context::{ContextParts, ContextScratch, SearchContext};
pub use ctxcache::{ContextCache, ContextCacheStats, DEFAULT_CONTEXT_CACHE_CAPACITY};
pub use engine::{
    AlgorithmChoice, EngineCalibration, EngineEpoch, MacEngine, NetworkDelta, UpdateStage,
    UpdateStats,
};
pub use error::{DeltaEntry, MacError};
pub use global::GlobalSearch;
pub use local::{ExpandStrategy, LocalSearch};
pub use network::RoadSocialNetwork;
pub use policy::ExecutionPolicy;
pub use query::{MacQuery, QuerySignature};
pub use result::{
    CellResult, Community, MacSearchResult, PartialResult, QueryOutcome, QueryPhase, QueryProgress,
    SearchStats,
};
pub use session::{BatchOutcome, BatchStats, BudgetedBatchOutcome, QuerySession, SessionStats};

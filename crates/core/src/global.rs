//! Global search: the DFS-based Algorithm 1 (`GS-T` / `GS-NC`).
//!
//! Starting from the maximal (k,t)-core `H^t_k`, the algorithm maintains a
//! queue of `(subgraph, sub-partition of R, deletion history)` states. For a
//! state it determines the candidate smallest-score vertices — the leaves of
//! the current r-dominance graph — inserts the half-spaces between them into a
//! local arrangement of the state's cell (Algorithm 2), and in every resulting
//! sub-partition deletes the smallest-score vertex with the DFS cascade
//! (lines 15–20). When Corollary 1 fires, the state's community is reported as
//! the non-contained MAC of that sub-partition, and the top-j MACs are
//! recovered by backtracking the deletion history.

use crate::context::SearchContext;
use crate::error::MacError;
use crate::network::RoadSocialNetwork;
use crate::query::MacQuery;
use crate::result::{CellResult, Community, MacSearchResult, SearchStats};
use rsn_geom::cell::Cell;
use rsn_geom::halfspace::HalfSpace;
use rsn_geom::partition::arrange;
use rsn_graph::subgraph::SubgraphView;
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

/// The DFS-based global search algorithm of Section V.
#[derive(Debug, Clone)]
pub struct GlobalSearch<'a> {
    rsn: &'a RoadSocialNetwork,
    query: &'a MacQuery,
}

struct State<'g> {
    view: SubgraphView<'g>,
    cell: Cell,
    deletion_groups: Vec<Vec<u32>>,
    /// Leaves whose pairwise order is already fixed inside `cell`, so their
    /// half-spaces need not be re-inserted (the "directly locate" optimization
    /// of Section V-B).
    settled_leaves: Vec<u32>,
}

impl<'a> GlobalSearch<'a> {
    /// Creates a global search for one query.
    pub fn new(rsn: &'a RoadSocialNetwork, query: &'a MacQuery) -> Self {
        GlobalSearch { rsn, query }
    }

    /// Problem 2: the non-contained MAC for every partition of `R` (GS-NC).
    pub fn run_non_contained(&self) -> Result<MacSearchResult, MacError> {
        self.run(false)
    }

    /// Problem 1: the top-j MACs for every partition of `R` (GS-T).
    pub fn run_top_j(&self) -> Result<MacSearchResult, MacError> {
        self.run(true)
    }

    fn run(&self, top_j_mode: bool) -> Result<MacSearchResult, MacError> {
        let start = Instant::now();
        let Some(ctx) = SearchContext::build(self.rsn, self.query)? else {
            return Ok(MacSearchResult {
                cells: Vec::new(),
                stats: SearchStats {
                    elapsed_seconds: start.elapsed().as_secs_f64(),
                    ..SearchStats::default()
                },
            });
        };
        let mut stats = SearchStats {
            kt_core_vertices: ctx.core_size(),
            kt_core_edges: ctx.core_edges(),
            dominance_tests: ctx.gd.tests_performed(),
            memory_bytes: ctx.gd.memory_bytes(),
            ..SearchStats::default()
        };

        let k = self.query.k;
        let q = ctx.local_q.clone();
        let j = if top_j_mode { self.query.j } else { 1 };

        let mut hs_cache: HashMap<(u32, u32), HalfSpace> = HashMap::new();
        let mut out_cells: Vec<CellResult> = Vec::new();
        let mut worklist: VecDeque<State<'_>> = VecDeque::new();
        worklist.push_back(State {
            view: SubgraphView::full(&ctx.local_graph),
            cell: Cell::from_region(&self.query.region),
            deletion_groups: Vec::new(),
            settled_leaves: Vec::new(),
        });

        while let Some(state) = worklist.pop_front() {
            // Track an approximate peak of live search memory (Fig. 11(d)).
            let live_bytes: usize = worklist
                .iter()
                .chain(std::iter::once(&state))
                .map(|s| s.view.alive_mask().len() * 5 + s.cell.memory_bytes())
                .sum::<usize>()
                + ctx.gd.memory_bytes();
            stats.memory_bytes = stats.memory_bytes.max(live_bytes);

            let alive_mask = state.view.alive_mask();
            let leaves: Vec<u32> = ctx
                .gd
                .leaves_within(alive_mask)
                .into_iter()
                .map(|v| v as u32)
                .collect();

            // Compute (or locate) the new hyperplanes among current leaves.
            let settled: HashSet<u32> = state.settled_leaves.iter().copied().collect();
            let mut hps: Vec<HalfSpace> = Vec::new();
            for (i, &a) in leaves.iter().enumerate() {
                for &b in leaves.iter().skip(i + 1) {
                    if settled.contains(&a) && settled.contains(&b) {
                        continue;
                    }
                    let key = (a.min(b), a.max(b));
                    let hs = hs_cache.entry(key).or_insert_with(|| {
                        stats.halfspaces_computed += 1;
                        HalfSpace::score_at_least(
                            &ctx.attrs[key.0 as usize],
                            &ctx.attrs[key.1 as usize],
                        )
                    });
                    hps.push(hs.clone());
                }
            }
            stats.halfspace_insertions += hps.len();

            let sub_cells = arrange(&state.cell, &hps);
            stats.partitions_explored += sub_cells.len();

            for sub_cell in sub_cells {
                let Some(w) = sub_cell.sample_point() else {
                    continue;
                };
                // Within the sub-partition the relative order of the leaves is
                // fixed, so the minimum at the sample point is the minimum
                // everywhere in the cell.
                let &u = leaves
                    .iter()
                    .min_by(|&&a, &&b| ctx.score(a, &w).total_cmp(&ctx.score(b, &w)))
                    .expect("a state always has at least one alive leaf");

                // Corollary 1(1): the smallest-score vertex is a query vertex.
                if q.contains(&u) {
                    out_cells.push(make_cell_result(&ctx, &state, sub_cell, w, j));
                    continue;
                }
                // Tentative deletion (lines 15-20) on a branch-local copy.
                let mut view = state.view.clone();
                let mut record = view.delete_cascade(u, k);
                let mut ok = q.iter().all(|&qv| view.is_alive(qv));
                if ok {
                    record.merge(view.retain_component_of(q[0]));
                    ok = q.iter().all(|&qv| view.is_alive(qv));
                }
                if !ok {
                    // Corollary 1(2): deleting u destroys the community, so the
                    // parent community is the non-contained MAC of this cell.
                    out_cells.push(make_cell_result(&ctx, &state, sub_cell, w, j));
                    continue;
                }
                let mut deletion_groups = state.deletion_groups.clone();
                deletion_groups.push(record.removed.clone());
                worklist.push_back(State {
                    view,
                    cell: sub_cell,
                    deletion_groups,
                    settled_leaves: leaves.clone(),
                });
            }
        }

        stats.elapsed_seconds = start.elapsed().as_secs_f64();
        Ok(MacSearchResult {
            cells: out_cells,
            stats,
        })
    }
}

/// Builds the output for one finished cell: the current community plus, for
/// top-j mode, the supersets obtained by backtracking the deletion history.
fn make_cell_result(
    ctx: &SearchContext<'_>,
    state: &State<'_>,
    cell: Cell,
    sample_weight: Vec<f64>,
    j: usize,
) -> CellResult {
    let mut communities: Vec<Community> = Vec::with_capacity(j);
    let mut current: Vec<u32> = state.view.alive_vertices();
    communities.push(ctx.community_from_locals(&current));
    for group in state.deletion_groups.iter().rev() {
        if communities.len() >= j {
            break;
        }
        current.extend(group.iter().copied());
        communities.push(ctx.community_from_locals(&current));
    }
    CellResult {
        cell,
        sample_weight,
        communities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::peel_at_weight;
    use rsn_geom::region::PrefRegion;
    use rsn_graph::graph::Graph;
    use rsn_road::network::{Location, RoadNetwork};

    /// The two-K4 network of the peel tests: {0,1,2,3} and {0,1,4,5} share the
    /// edge (0,1); attribute space splits them cleanly.
    fn network() -> RoadSocialNetwork {
        let social = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (0, 4),
                (0, 5),
                (1, 4),
                (1, 5),
                (4, 5),
            ],
        );
        let road = RoadNetwork::from_edges(2, &[(0, 1, 1.0)]);
        let locations = vec![Location::vertex(0); 6];
        let attrs = vec![
            vec![6.0, 6.0],
            vec![6.0, 6.0],
            vec![9.0, 1.0],
            vec![8.0, 2.0],
            vec![1.0, 9.0],
            vec![2.0, 8.0],
        ];
        RoadSocialNetwork::new(social, road, locations, attrs).unwrap()
    }

    #[test]
    fn gs_nc_partitions_region_by_preference() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0, 1], 3, 10.0, region);
        let gs = GlobalSearch::new(&rsn, &query);
        let result = gs.run_non_contained().unwrap();
        assert!(!result.is_empty());
        // both sides must appear among the distinct non-contained MACs
        let distinct = result.distinct_communities();
        let has_left = distinct.iter().any(|c| c.vertices == vec![0, 1, 2, 3]);
        let has_right = distinct.iter().any(|c| c.vertices == vec![0, 1, 4, 5]);
        assert!(has_left && has_right, "distinct = {distinct:?}");
        assert!(result.stats.kt_core_vertices == 6);
        assert!(result.stats.partitions_explored >= 2);
    }

    #[test]
    fn gs_nc_cells_agree_with_fixed_weight_peeling() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0, 1], 3, 10.0, region);
        let gs = GlobalSearch::new(&rsn, &query);
        let result = gs.run_non_contained().unwrap();
        let ctx = SearchContext::build(&rsn, &query).unwrap().unwrap();
        for cell in &result.cells {
            let oracle = peel_at_weight(&ctx, &cell.sample_weight);
            let expect = ctx.community_from_locals(&oracle.final_vertices);
            assert_eq!(
                cell.communities[0].vertices, expect.vertices,
                "cell with sample {:?} disagrees with the peeling oracle",
                cell.sample_weight
            );
        }
    }

    #[test]
    fn gs_top_j_returns_nested_communities() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0, 1], 3, 10.0, region).with_top_j(2);
        let gs = GlobalSearch::new(&rsn, &query);
        let result = gs.run_top_j().unwrap();
        assert!(!result.is_empty());
        for cell in &result.cells {
            assert!(!cell.communities.is_empty() && cell.communities.len() <= 2);
            for pair in cell.communities.windows(2) {
                assert!(pair[1].contains_all(&pair[0]));
                assert!(pair[1].len() > pair[0].len());
            }
            // every community is a connected k-core containing the query
            for c in &cell.communities {
                assert!(c.contains(0) && c.contains(1));
            }
        }
    }

    #[test]
    fn gs_empty_when_no_kt_core() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0], 5, 10.0, region);
        let gs = GlobalSearch::new(&rsn, &query);
        let result = gs.run_non_contained().unwrap();
        assert!(result.is_empty());
        assert_eq!(result.stats.kt_core_vertices, 0);
    }

    #[test]
    fn gs_single_attribute_degenerates_to_single_cell() {
        // d = 1: the preference domain is 0-dimensional, so the answer is a
        // single cell identical to a fixed-weight peel.
        let social = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3), (1, 3), (0, 3)]);
        let road = RoadNetwork::from_edges(1, &[]);
        let locations = vec![Location::vertex(0); 4];
        let attrs = vec![vec![4.0], vec![3.0], vec![2.0], vec![1.0]];
        let rsn = RoadSocialNetwork::new(social, road, locations, attrs).unwrap();
        let region = PrefRegion::from_ranges(&[]).unwrap();
        let query = MacQuery::new(vec![0], 2, 10.0, region);
        let result = GlobalSearch::new(&rsn, &query).run_non_contained().unwrap();
        assert_eq!(result.num_cells(), 1);
        // vertices 3 then 2 are peeled away (scores 1 and 2), leaving a
        // triangle is impossible at k=2? {0,1,2} is a triangle: yes.
        assert_eq!(result.cells[0].communities[0].vertices, vec![0, 1, 2]);
    }
}

//! Global search: the DFS-based Algorithm 1 (`GS-T` / `GS-NC`).
//!
//! Starting from the maximal (k,t)-core `H^t_k`, the algorithm explores
//! `(subgraph, sub-partition of R, deletion history)` states depth-first. For
//! a state it determines the candidate smallest-score vertices — the leaves of
//! the current r-dominance graph — inserts the half-spaces between them into a
//! local arrangement of the state's cell (Algorithm 2), and in every resulting
//! sub-partition deletes the smallest-score vertex with the DFS cascade
//! (lines 15–20). When Corollary 1 fires, the state's community is reported as
//! the non-contained MAC of that sub-partition, and the top-j MACs are
//! recovered by backtracking the deletion history.
//!
//! The exploration shares **one** [`SubgraphView`] across all branches: a
//! branch takes a [checkpoint](SubgraphView::checkpoint) before its tentative
//! deletion and [rolls back](SubgraphView::rollback) on return, so sibling
//! cells reuse the same scratch state and no per-branch `view.clone()` /
//! `deletion_groups.clone()` allocations happen (they dominated the runtime
//! of the queue-based formulation this replaced).

use crate::context::SearchContext;
use crate::error::MacError;
use crate::network::RoadSocialNetwork;
use crate::query::MacQuery;
use crate::result::{CellResult, Community, MacSearchResult, SearchStats};
use rsn_geom::cell::Cell;
use rsn_geom::halfspace::HalfSpace;
use rsn_geom::partition::arrange;
use rsn_graph::subgraph::SubgraphView;
use std::collections::HashMap;
use std::time::Instant;

/// The DFS-based global search algorithm of Section V.
#[derive(Debug, Clone)]
pub struct GlobalSearch<'a> {
    rsn: &'a RoadSocialNetwork,
    query: &'a MacQuery,
}

/// Mutable state threaded through the depth-first exploration.
struct Dfs<'c, 'g> {
    ctx: &'c SearchContext<'g>,
    k: u32,
    q: &'c [u32],
    j: usize,
    /// Half-spaces between leaf pairs, computed once per pair per query.
    hs_cache: HashMap<(u32, u32), HalfSpace>,
    /// Deletion groups committed along the current DFS path (push on
    /// descend, pop on return) — the backtracking history for top-j.
    deletion_groups: Vec<Vec<u32>>,
    out_cells: Vec<CellResult>,
    stats: SearchStats,
}

impl<'a> GlobalSearch<'a> {
    /// Creates a global search for one query.
    pub fn new(rsn: &'a RoadSocialNetwork, query: &'a MacQuery) -> Self {
        GlobalSearch { rsn, query }
    }

    /// Problem 2: the non-contained MAC for every partition of `R` (GS-NC).
    pub fn run_non_contained(&self) -> Result<MacSearchResult, MacError> {
        self.run(false)
    }

    /// Problem 1: the top-j MACs for every partition of `R` (GS-T).
    pub fn run_top_j(&self) -> Result<MacSearchResult, MacError> {
        self.run(true)
    }

    fn run(&self, top_j_mode: bool) -> Result<MacSearchResult, MacError> {
        let start = Instant::now();
        let Some(ctx) = SearchContext::build(self.rsn, self.query)? else {
            return Ok(MacSearchResult {
                cells: Vec::new(),
                stats: SearchStats {
                    elapsed_seconds: start.elapsed().as_secs_f64(),
                    ..SearchStats::default()
                },
            });
        };
        let stats = SearchStats {
            kt_core_vertices: ctx.core_size(),
            kt_core_edges: ctx.core_edges(),
            dominance_tests: ctx.gd.tests_performed(),
            memory_bytes: ctx.gd.memory_bytes(),
            ..SearchStats::default()
        };

        let q = ctx.local_q.clone();
        let mut dfs = Dfs {
            ctx: &ctx,
            k: self.query.k,
            q: &q,
            j: if top_j_mode { self.query.j } else { 1 },
            hs_cache: HashMap::new(),
            deletion_groups: Vec::new(),
            out_cells: Vec::new(),
            stats,
        };
        let mut view = SubgraphView::full(&ctx.local_graph);
        dfs.explore(&mut view, Cell::from_region(&self.query.region), &[], 1);

        let Dfs {
            out_cells,
            mut stats,
            ..
        } = dfs;
        stats.elapsed_seconds = start.elapsed().as_secs_f64();
        Ok(MacSearchResult {
            cells: out_cells,
            stats,
        })
    }
}

impl Dfs<'_, '_> {
    /// Explores one `(subgraph, cell)` state. `settled` holds the parent
    /// state's leaves — pairs of settled leaves are already separated by the
    /// arrangement that produced `cell`, so their half-spaces need not be
    /// re-inserted (the "directly locate" optimization of Section V-B).
    /// `depth` is the number of states on the current DFS path.
    fn explore(&mut self, view: &mut SubgraphView<'_>, cell: Cell, settled: &[u32], depth: usize) {
        let ctx = self.ctx;
        // Track an approximate peak of live search memory (Fig. 11(d)): the
        // DFS path holds one view plus per-level cells and deletion groups.
        let live_bytes = ctx.gd.memory_bytes()
            + view.alive_mask().len() * 5
            + depth * cell.memory_bytes()
            + self
                .deletion_groups
                .iter()
                .map(|g| g.len() * std::mem::size_of::<u32>())
                .sum::<usize>();
        self.stats.memory_bytes = self.stats.memory_bytes.max(live_bytes);

        let leaves: Vec<u32> = ctx
            .gd
            .leaves_within(view.alive_mask())
            .into_iter()
            .map(|v| v as u32)
            .collect();

        // Compute (or locate) the new hyperplanes among current leaves;
        // `settled` is sorted (leaves come out in increasing id order).
        let is_settled = |v: u32| settled.binary_search(&v).is_ok();
        let mut hps: Vec<HalfSpace> = Vec::new();
        for (i, &a) in leaves.iter().enumerate() {
            for &b in leaves.iter().skip(i + 1) {
                if is_settled(a) && is_settled(b) {
                    continue;
                }
                let key = (a.min(b), a.max(b));
                if !self.hs_cache.contains_key(&key) {
                    self.stats.halfspaces_computed += 1;
                    let hs = HalfSpace::score_at_least(
                        ctx.attrs.row(key.0 as usize),
                        ctx.attrs.row(key.1 as usize),
                    );
                    self.hs_cache.insert(key, hs);
                }
                hps.push(self.hs_cache[&key].clone());
            }
        }
        self.stats.halfspace_insertions += hps.len();

        let sub_cells = arrange(&cell, &hps);
        self.stats.partitions_explored += sub_cells.len();

        for sub_cell in sub_cells {
            let Some(w) = sub_cell.sample_point() else {
                continue;
            };
            // Within the sub-partition the relative order of the leaves is
            // fixed, so the minimum at the sample point is the minimum
            // everywhere in the cell. Exact score ties (e.g. identical
            // attribute vectors, which no half-space can separate) are broken
            // by smallest id — the same rule the fixed-weight peeling oracle
            // applies, so both explorations delete the same vertex.
            let u = leaves
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    ctx.score(a, &w)
                        .total_cmp(&ctx.score(b, &w))
                        .then_with(|| a.cmp(&b))
                })
                .expect("a state always has at least one alive leaf");

            // Corollary 1(1): the smallest-score vertex is a query vertex.
            if self.q.contains(&u) {
                self.report_cell(view, sub_cell, w);
                continue;
            }
            // Tentative deletion (lines 15-20) behind a checkpoint.
            let cp = view.checkpoint();
            view.delete_cascade_logged(u, self.k);
            let mut ok = self.q.iter().all(|&qv| view.is_alive(qv));
            if ok {
                view.retain_component_of_logged(self.q[0]);
                ok = self.q.iter().all(|&qv| view.is_alive(qv));
            }
            if !ok {
                // Corollary 1(2): deleting u destroys the community, so the
                // parent community is the non-contained MAC of this cell.
                view.rollback(cp);
                self.report_cell(view, sub_cell, w);
                continue;
            }
            self.deletion_groups.push(view.log_since(cp).to_vec());
            self.explore(view, sub_cell, &leaves, depth + 1);
            self.deletion_groups.pop();
            view.rollback(cp);
        }
    }

    /// Reports one finished cell: the current community plus, for top-j mode,
    /// the supersets obtained by backtracking the deletion history.
    fn report_cell(&mut self, view: &SubgraphView<'_>, cell: Cell, sample_weight: Vec<f64>) {
        let ctx = self.ctx;
        let mut communities: Vec<Community> = Vec::with_capacity(self.j);
        let mut current: Vec<u32> = view.alive_vertices();
        communities.push(ctx.community_from_locals(&current));
        for group in self.deletion_groups.iter().rev() {
            if communities.len() >= self.j {
                break;
            }
            current.extend(group.iter().copied());
            communities.push(ctx.community_from_locals(&current));
        }
        self.out_cells.push(CellResult {
            cell,
            sample_weight,
            communities,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::peel_at_weight;
    use rsn_geom::region::PrefRegion;
    use rsn_graph::graph::Graph;
    use rsn_road::network::{Location, RoadNetwork};

    /// The two-K4 network of the peel tests: {0,1,2,3} and {0,1,4,5} share the
    /// edge (0,1); attribute space splits them cleanly.
    fn network() -> RoadSocialNetwork {
        let social = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (0, 4),
                (0, 5),
                (1, 4),
                (1, 5),
                (4, 5),
            ],
        );
        let road = RoadNetwork::from_edges(2, &[(0, 1, 1.0)]);
        let locations = vec![Location::vertex(0); 6];
        let attrs = vec![
            vec![6.0, 6.0],
            vec![6.0, 6.0],
            vec![9.0, 1.0],
            vec![8.0, 2.0],
            vec![1.0, 9.0],
            vec![2.0, 8.0],
        ];
        RoadSocialNetwork::new(social, road, locations, attrs).unwrap()
    }

    #[test]
    fn gs_nc_partitions_region_by_preference() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0, 1], 3, 10.0, region);
        let gs = GlobalSearch::new(&rsn, &query);
        let result = gs.run_non_contained().unwrap();
        assert!(!result.is_empty());
        // both sides must appear among the distinct non-contained MACs
        let distinct = result.distinct_communities();
        let has_left = distinct.iter().any(|c| c.vertices == vec![0, 1, 2, 3]);
        let has_right = distinct.iter().any(|c| c.vertices == vec![0, 1, 4, 5]);
        assert!(has_left && has_right, "distinct = {distinct:?}");
        assert!(result.stats.kt_core_vertices == 6);
        assert!(result.stats.partitions_explored >= 2);
    }

    #[test]
    fn gs_nc_cells_agree_with_fixed_weight_peeling() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0, 1], 3, 10.0, region);
        let gs = GlobalSearch::new(&rsn, &query);
        let result = gs.run_non_contained().unwrap();
        let ctx = SearchContext::build(&rsn, &query).unwrap().unwrap();
        for cell in &result.cells {
            let oracle = peel_at_weight(&ctx, &cell.sample_weight);
            let expect = ctx.community_from_locals(&oracle.final_vertices);
            assert_eq!(
                cell.communities[0].vertices, expect.vertices,
                "cell with sample {:?} disagrees with the peeling oracle",
                cell.sample_weight
            );
        }
    }

    #[test]
    fn gs_top_j_returns_nested_communities() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0, 1], 3, 10.0, region).with_top_j(2);
        let gs = GlobalSearch::new(&rsn, &query);
        let result = gs.run_top_j().unwrap();
        assert!(!result.is_empty());
        for cell in &result.cells {
            assert!(!cell.communities.is_empty() && cell.communities.len() <= 2);
            for pair in cell.communities.windows(2) {
                assert!(pair[1].contains_all(&pair[0]));
                assert!(pair[1].len() > pair[0].len());
            }
            // every community is a connected k-core containing the query
            for c in &cell.communities {
                assert!(c.contains(0) && c.contains(1));
            }
        }
    }

    #[test]
    fn gs_empty_when_no_kt_core() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0], 5, 10.0, region);
        let gs = GlobalSearch::new(&rsn, &query);
        let result = gs.run_non_contained().unwrap();
        assert!(result.is_empty());
        assert_eq!(result.stats.kt_core_vertices, 0);
    }

    #[test]
    fn gs_single_attribute_degenerates_to_single_cell() {
        // d = 1: the preference domain is 0-dimensional, so the answer is a
        // single cell identical to a fixed-weight peel.
        let social = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3), (1, 3), (0, 3)]);
        let road = RoadNetwork::from_edges(1, &[]);
        let locations = vec![Location::vertex(0); 4];
        let attrs = vec![vec![4.0], vec![3.0], vec![2.0], vec![1.0]];
        let rsn = RoadSocialNetwork::new(social, road, locations, attrs).unwrap();
        let region = PrefRegion::from_ranges(&[]).unwrap();
        let query = MacQuery::new(vec![0], 2, 10.0, region);
        let result = GlobalSearch::new(&rsn, &query).run_non_contained().unwrap();
        assert_eq!(result.num_cells(), 1);
        // vertices 3 then 2 are peeled away (scores 1 and 2), leaving a
        // triangle is impossible at k=2? {0,1,2} is a triangle: yes.
        assert_eq!(result.cells[0].communities[0].vertices, vec![0, 1, 2]);
    }
}

//! Global search: the DFS-based Algorithm 1 (`GS-T` / `GS-NC`).
//!
//! Starting from the maximal (k,t)-core `H^t_k`, the algorithm explores
//! `(subgraph, sub-partition of R, deletion history)` states depth-first. For
//! a state it determines the candidate smallest-score vertices — the leaves of
//! the current r-dominance graph — inserts the half-spaces between them into a
//! local arrangement of the state's cell (Algorithm 2), and in every resulting
//! sub-partition deletes the smallest-score vertex with the DFS cascade
//! (lines 15–20). When Corollary 1 fires, the state's community is reported as
//! the non-contained MAC of that sub-partition, and the top-j MACs are
//! recovered by backtracking the deletion history.
//!
//! Three engine-level departures from a literal transcription of the paper:
//!
//! * **Explicit stack.** The exploration runs on an explicit task stack
//!   (the private `Task` enum) instead of call recursion, so the search depth
//!   is bounded by heap memory rather than thread stack — peel paths through a
//!   10^5-vertex (k,t)-core are just more stack entries. A worker shares
//!   **one** [`SubgraphView`] across all branches: a `Task::Retreat` entry
//!   rolls the view back to the checkpoint taken when the branch was entered,
//!   so sibling cells reuse the same scratch state and no per-branch clones
//!   happen.
//!
//! * **Work stealing.** Sub-partition counts are heavily skewed — one root
//!   cell can own almost the whole arrangement — so static distribution of
//!   top-level cells leaves workers idle. Instead, every pending `Visit` on a
//!   worker's stack is a self-contained unit of work: its cell, its candidate
//!   leaves, and the deletion groups along its ancestor path fully determine
//!   the subtree. When another worker goes idle, a busy worker donates its
//!   **bottom-most** pending `Visit` (the largest unexplored subtree) through
//!   a shared injector queue; the thief replays the donated deletion prefix on
//!   its private view and explores the subtree as if it had descended there
//!   itself. Every report is tagged with its DFS path, and the merge sorts by
//!   path — lexicographic path order **is** the serial emission order, so the
//!   output is bit-identical to the serial run regardless of how work moved.
//!
//! * **Pooled scratch.** All per-query allocations (task stack, leaf arena,
//!   half-space cache, arrangement nodes, deletion groups, result husks) live
//!   in a crate-internal `GsScratch` that the caller retains across queries,
//!   so a steady-state query on a warmed session performs no heap allocation.
//!
//! Parallelism and stealing are selected through the session's
//! [`ExecutionPolicy`]; results are identical at any setting.

use crate::context::SearchContext;
use crate::error::MacError;
use crate::network::RoadSocialNetwork;
use crate::policy::ExecutionPolicy;
use crate::query::MacQuery;
use crate::result::{BudgetedRun, CellResult, Community, MacSearchResult, SearchStats};
use rsn_geom::cell::Cell;
use rsn_geom::halfspace::HalfSpace;
use rsn_geom::partition::{arrange_into, ArrangeScratch};
use rsn_geom::region::PrefRegion;
use rsn_graph::subgraph::{Checkpoint, SubgraphView, ViewScratch};
use rsn_road::budget::{BudgetTicker, SharedBudget, WorkerTicker};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// The DFS-based global search algorithm of Section V.
#[derive(Debug, Clone)]
pub struct GlobalSearch<'a> {
    rsn: &'a RoadSocialNetwork,
    query: &'a MacQuery,
    opts: GsOptions,
}

/// Execution knobs for one global-search run, resolved by the caller (the
/// engine's `ExecutionPolicy` or the builder shims on [`GlobalSearch`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct GsOptions {
    /// Worker threads. `1` = serial on the calling thread, `0` = all cores.
    pub parallelism: usize,
    /// Donate pending subtrees to idle workers (on by default). With stealing
    /// off, parallel runs fall back to static top-level-cell distribution.
    pub work_stealing: bool,
}

impl Default for GsOptions {
    fn default() -> Self {
        GsOptions {
            parallelism: 1,
            work_stealing: true,
        }
    }
}

/// A contiguous run of candidate leaves inside the scratch arena.
///
/// Leaf sets along the DFS path are stacked in one flat `Vec<u32>`: a descend
/// appends its leaves at the current end and the matching `Retreat` truncates
/// back, so ranges are stable for exactly as long as a task referencing them
/// is on the stack.
#[derive(Debug, Clone, Copy)]
struct LeafRange {
    start: u32,
    len: u32,
}

impl LeafRange {
    const EMPTY: LeafRange = LeafRange { start: 0, len: 0 };
}

#[inline]
fn leaf_slice(arena: &[u32], r: LeafRange) -> &[u32] {
    &arena[r.start as usize..(r.start + r.len) as usize]
}

/// One unit of deferred work on a worker's explicit DFS stack.
///
/// The stack discipline mirrors the recursion it replaces: `Arrange` plays the
/// role of a recursive `explore` call, `Visit` is one iteration of its
/// sub-cell loop, and `Retreat` is the code after the recursive call returned
/// (pop the deletion group, roll the shared view back, truncate the arena).
#[derive(Debug)]
enum Task {
    /// Arrange the half-spaces among the current leaves inside `cell` and
    /// queue a `Visit` per resulting sub-cell. `settled` holds the parent
    /// state's leaves (their pairwise half-spaces are already separated).
    Arrange {
        cell: Cell,
        settled: LeafRange,
        depth: u32,
    },
    /// Decide one sub-cell: report its community or tentatively delete the
    /// smallest-score vertex and descend. `idx` is the cell's position in its
    /// parent arrangement — the task's coordinate in the DFS path.
    Visit {
        cell: Cell,
        leaves: LeafRange,
        depth: u32,
        idx: u32,
    },
    /// Return from a descent: pop the deletion group, roll back, truncate the
    /// leaf arena to its pre-descent length.
    Retreat { cp: Checkpoint, arena_mark: u32 },
}

/// A stolen (or seeded) subtree: everything a thief needs to explore a
/// pending `Visit` on its own view. `path[i]` is the arrangement index taken
/// at depth `i + 1`; `prefix_groups` are the deletion groups of the
/// `path.len() - 1` ancestor descents, replayed vertex-by-vertex before the
/// subtree runs (cascade order does not matter — the final alive set and the
/// degrees of alive vertices are order-independent).
struct Stolen {
    cell: Cell,
    leaves: Vec<u32>,
    path: Vec<u32>,
    prefix_groups: Vec<Vec<u32>>,
}

/// Shared state of the work-stealing pool: a mutexed injector queue plus the
/// idle/active accounting that detects termination.
struct PoolState {
    queue: Vec<Stolen>,
    active: usize,
    done: bool,
}

struct SharedPool<'b> {
    state: Mutex<PoolState>,
    cvar: Condvar,
    /// Fast donation hint: how many workers are parked in `get_work`.
    idle: AtomicUsize,
    budget: Option<&'b SharedBudget>,
    steal: bool,
}

/// Pops the next work item, parking until one is donated or every worker is
/// out of work. Returns `None` on termination (queue drained and all workers
/// idle, or the shared budget tripped — leftover queue items are left for the
/// coordinator to count as dropped).
fn get_work(pool: &SharedPool<'_>) -> Option<Stolen> {
    let mut st = pool.state.lock().unwrap();
    loop {
        if st.done {
            return None;
        }
        if pool.budget.is_some_and(|b| b.is_exhausted()) {
            st.done = true;
            pool.cvar.notify_all();
            return None;
        }
        if let Some(item) = st.queue.pop() {
            return Some(item);
        }
        st.active -= 1;
        if st.active == 0 {
            st.done = true;
            pool.cvar.notify_all();
            return None;
        }
        pool.idle.fetch_add(1, Ordering::Relaxed);
        st = pool.cvar.wait(st).unwrap();
        pool.idle.fetch_sub(1, Ordering::Relaxed);
        st.active += 1;
    }
}

/// Lexicographic minimum of an optional running frontier and a candidate.
fn min_path(cur: Option<Vec<u32>>, cand: Vec<u32>) -> Option<Vec<u32>> {
    match cur {
        Some(c) if c <= cand => Some(c),
        _ => Some(cand),
    }
}

/// All per-query mutable state of one global-search worker, retained by the
/// caller across queries so a warmed steady-state query allocates nothing.
#[derive(Debug)]
pub(crate) struct GsScratch {
    stack: Vec<Task>,
    /// Flat arena of candidate-leaf ids; see [`LeafRange`].
    arena: Vec<u32>,
    /// Arrangement indices taken along the current DFS path (depth `d` ⇒
    /// `cur_path.len() == d` while visiting a depth-`d` cell).
    cur_path: Vec<u32>,
    /// Half-space cache: pair → slot in `hs_store`. Cleared per query (keeps
    /// capacity); slots below `hs_cursor` are live this query.
    hs_index: HashMap<(u32, u32), u32>,
    hs_store: Vec<HalfSpace>,
    hs_cursor: usize,
    /// Half-space slots of the current arrangement, in insertion order.
    hps_buf: Vec<u32>,
    arrange: ArrangeScratch,
    view_scratch: ViewScratch,
    /// Scratch mask for `leaves_within_into`.
    leaf_mark: Vec<bool>,
    /// Deletion groups committed along the current DFS path (push on descend,
    /// pop on retreat) — the backtracking history for top-j.
    deletion_groups: Vec<Vec<u32>>,
    /// Retired deletion-group vectors awaiting reuse.
    spare_groups: Vec<Vec<u32>>,
    /// Sample point of the cell currently being decided.
    sample_buf: Vec<f64>,
    /// Output buffer of the current arrangement.
    sub_cells: Vec<Cell>,
    /// Alive-vertex buffer for community reporting.
    alive_buf: Vec<u32>,
    root_cell: Cell,
    /// Retired result husks (cell + weight + community vectors) awaiting
    /// reuse; replenished by [`GsScratch::recycle`].
    spare_results: Vec<CellResult>,
    spare_communities: Vec<Community>,
    /// Retired output vector awaiting reuse as the next query's `out_cells`.
    out_buf: Vec<CellResult>,
}

fn empty_cell() -> Cell {
    Cell::from_region(&PrefRegion::from_ranges(&[]).expect("empty region is valid"))
}

impl Default for GsScratch {
    fn default() -> Self {
        GsScratch {
            stack: Vec::new(),
            arena: Vec::new(),
            cur_path: Vec::new(),
            hs_index: HashMap::new(),
            hs_store: Vec::new(),
            hs_cursor: 0,
            hps_buf: Vec::new(),
            arrange: ArrangeScratch::new(),
            view_scratch: ViewScratch::new(),
            leaf_mark: Vec::new(),
            deletion_groups: Vec::new(),
            spare_groups: Vec::new(),
            sample_buf: Vec::new(),
            sub_cells: Vec::new(),
            alive_buf: Vec::new(),
            root_cell: empty_cell(),
            spare_results: Vec::new(),
            spare_communities: Vec::new(),
            out_buf: Vec::new(),
        }
    }
}

impl GsScratch {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Clears per-query state (keeping every capacity) for the next run.
    fn reset(&mut self) {
        debug_assert!(self.stack.is_empty());
        debug_assert!(self.deletion_groups.is_empty());
        self.stack.clear();
        self.arena.clear();
        self.cur_path.clear();
        self.hs_index.clear();
        self.hs_cursor = 0;
        self.hps_buf.clear();
        self.sub_cells.clear();
    }

    /// Returns a finished result's buffers to the pools, so the next query on
    /// this scratch reuses them instead of allocating. Callers that keep the
    /// result simply drop it — recycling is an optimization, not a duty.
    pub(crate) fn recycle(&mut self, mut result: MacSearchResult) {
        self.spare_results.append(&mut result.cells);
        if result.cells.capacity() > self.out_buf.capacity() {
            self.out_buf = result.cells;
        }
    }
}

/// Per-worker exploration state. Workers never share mutable state; each owns
/// its scratch, deletion history, and output buffers.
struct Worker<'c, 'g, 's> {
    ctx: &'c SearchContext<'g>,
    k: u32,
    q: &'c [u32],
    j: usize,
    scratch: &'s mut GsScratch,
    /// Tag every report with its DFS path (parallel runs only; the merge
    /// sorts by path to recover the serial order).
    record_paths: bool,
    out_cells: Vec<CellResult>,
    out_paths: Vec<Vec<u32>>,
    stats: SearchStats,
}

/// Everything a parallel run hands back to the coordinator.
struct ParallelOutcome {
    cells: Vec<CellResult>,
    stats: SearchStats,
    /// Tasks charged/executed across all workers (budgeted runs).
    executed: u64,
    /// Tasks known dropped (budgeted runs that tripped).
    dropped: u64,
    /// Lexicographically smallest dropped DFS path; `None` ⇒ ran to
    /// completion. Outputs at or beyond the frontier are filtered so the
    /// partial result is a coherent prefix of the full serial output.
    frontier: Option<Vec<u32>>,
}

impl<'a> GlobalSearch<'a> {
    /// Creates a (serial) global search for one query.
    pub fn new(rsn: &'a RoadSocialNetwork, query: &'a MacQuery) -> Self {
        GlobalSearch {
            rsn,
            query,
            opts: GsOptions {
                parallelism: 1,
                ..GsOptions::default()
            },
        }
    }

    /// Adopts the execution knobs this one-shot search honours (parallelism
    /// and work stealing) from an [`ExecutionPolicy`]. Results are identical
    /// at any setting — parallel outputs are merged in deterministic DFS
    /// order.
    pub fn with_policy(self, policy: &ExecutionPolicy) -> Self {
        self.with_opts(GsOptions {
            parallelism: policy.parallelism,
            work_stealing: policy.work_stealing,
        })
    }

    /// Sets the number of worker threads. `1` (the default) runs serially on
    /// the calling thread; `0` resolves to the machine's available
    /// parallelism. Results are identical at any setting — parallel outputs
    /// are merged in deterministic DFS order.
    #[deprecated(
        since = "0.10.0",
        note = "set `ExecutionPolicy::parallelism` and pass it via \
                `GlobalSearch::with_policy` (or execute through a \
                `QuerySession`, which applies its policy automatically)"
    )]
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.opts.parallelism = workers;
        self
    }

    /// Overrides the full execution options (parallelism + stealing).
    pub(crate) fn with_opts(mut self, opts: GsOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Problem 2: the non-contained MAC for every partition of `R` (GS-NC).
    pub fn run_non_contained(&self) -> Result<MacSearchResult, MacError> {
        self.run(false)
    }

    /// Problem 1: the top-j MACs for every partition of `R` (GS-T).
    pub fn run_top_j(&self) -> Result<MacSearchResult, MacError> {
        self.run(true)
    }

    fn resolved_workers(opts: GsOptions, top_cells: usize) -> usize {
        let requested = if opts.parallelism == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            opts.parallelism
        };
        let requested = requested.max(1);
        if top_cells == 0 {
            return 1;
        }
        if opts.work_stealing {
            // Stealing redistributes skew at any depth, so a single top-level
            // cell can still fan out across all requested workers.
            requested
        } else {
            requested.min(top_cells)
        }
    }

    fn run(&self, top_j_mode: bool) -> Result<MacSearchResult, MacError> {
        let start = Instant::now();
        let Some(ctx) = SearchContext::build(self.rsn, self.query)? else {
            return Ok(MacSearchResult {
                cells: Vec::new(),
                stats: SearchStats {
                    elapsed_seconds: start.elapsed().as_secs_f64(),
                    ..SearchStats::default()
                },
            });
        };
        let mut scratch = GsScratch::new();
        let mut result = Self::explore_context(&ctx, &mut scratch, self.opts, top_j_mode);
        result.stats.elapsed_seconds = start.elapsed().as_secs_f64();
        Ok(result)
    }

    fn base_stats(ctx: &SearchContext<'_>) -> SearchStats {
        SearchStats {
            kt_core_vertices: ctx.core_size(),
            kt_core_edges: ctx.core_edges(),
            dominance_tests: ctx.gd.tests_performed(),
            memory_bytes: ctx.gd.memory_bytes(),
            ..SearchStats::default()
        }
    }

    /// Explores a prebuilt [`SearchContext`] to completion — the engine-level
    /// entry point shared by the one-shot wrappers
    /// ([`run_non_contained`](Self::run_non_contained) /
    /// [`run_top_j`](Self::run_top_j)) and by
    /// [`QuerySession`](crate::session::QuerySession), which passes its
    /// retained scratch so warmed queries allocate nothing.
    /// `elapsed_seconds` covers only the exploration; callers overwrite it
    /// with their end-to-end timing.
    pub(crate) fn explore_context(
        ctx: &SearchContext<'_>,
        scratch: &mut GsScratch,
        opts: GsOptions,
        top_j_mode: bool,
    ) -> MacSearchResult {
        let start = Instant::now();
        let k = ctx.query.k;
        let q: &[u32] = &ctx.local_q;
        let j = if top_j_mode { ctx.query.j } else { 1 };

        scratch.reset();
        let out_buf = std::mem::take(&mut scratch.out_buf);
        let mut worker = Worker::new(ctx, k, q, j, scratch, false, Self::base_stats(ctx), out_buf);
        let mut view =
            SubgraphView::full_from_scratch(&ctx.local_graph, &mut worker.scratch.view_scratch);
        let leaves0 = worker.prepare_root(&view);

        let workers = Self::resolved_workers(opts, worker.scratch.sub_cells.len());
        let (out_cells, mut stats) = if workers <= 1 {
            // Serial: one worker, one view, cells emitted in DFS order.
            worker.push_top_cells(leaves0);
            worker.run_local(&mut view);
            (
                std::mem::take(&mut worker.out_cells),
                std::mem::take(&mut worker.stats),
            )
        } else {
            let leaves0 = leaf_slice(&worker.scratch.arena, leaves0).to_vec();
            let top_cells: Vec<Cell> = worker.scratch.sub_cells.drain(..).collect();
            let root_stats = std::mem::take(&mut worker.stats);
            let outcome = Self::run_parallel(
                ctx,
                k,
                q,
                j,
                workers,
                opts.work_stealing,
                leaves0,
                top_cells,
                root_stats,
                None,
            );
            debug_assert!(outcome.frontier.is_none());
            (outcome.cells, outcome.stats)
        };
        view.recycle_into(&mut worker.scratch.view_scratch);

        stats.elapsed_seconds = start.elapsed().as_secs_f64();
        MacSearchResult {
            cells: out_cells,
            stats,
        }
    }

    /// Budgeted [`explore_context`](Self::explore_context): charges one unit
    /// per DFS task and stops cooperatively. Serial runs stop exactly where
    /// the charge fails, so the reported cells are a prefix of the full run's
    /// in DFS order. Parallel runs share the budget through an atomic latch
    /// ([`SharedBudget`]) — the first worker to trip stops every other worker
    /// at its next check, and the merge keeps only reports strictly before
    /// the smallest dropped DFS path, so the partial result is again one
    /// coherent prefix of the full output. `remaining` counts the tasks and
    /// top-level cells known to be left undone.
    pub(crate) fn explore_context_budgeted(
        ctx: &SearchContext<'_>,
        scratch: &mut GsScratch,
        opts: GsOptions,
        top_j_mode: bool,
        ticker: &mut BudgetTicker,
    ) -> BudgetedRun {
        let start = Instant::now();
        let k = ctx.query.k;
        let q: &[u32] = &ctx.local_q;
        let j = if top_j_mode { ctx.query.j } else { 1 };

        // Guard before the root arrangement, whose half-space set is
        // quadratic in the initial leaf count.
        if !ticker.charge(1) {
            let mut stats = Self::base_stats(ctx);
            stats.elapsed_seconds = start.elapsed().as_secs_f64();
            return BudgetedRun {
                result: MacSearchResult {
                    cells: Vec::new(),
                    stats,
                },
                completed: false,
                explored: 0,
                remaining: 1,
            };
        }

        scratch.reset();
        let out_buf = std::mem::take(&mut scratch.out_buf);
        let mut worker = Worker::new(ctx, k, q, j, scratch, false, Self::base_stats(ctx), out_buf);
        let mut view =
            SubgraphView::full_from_scratch(&ctx.local_graph, &mut worker.scratch.view_scratch);
        let leaves0 = worker.prepare_root(&view);
        let total_cells = worker.scratch.sub_cells.len() as u64;

        let mut explored = 1u64;
        let completed;
        let remaining;
        let out_cells;
        let mut stats;
        // Charge the root arrangement after the fact, then walk the DFS.
        if !ticker.charge(leaves0.len as u64 + total_cells) {
            completed = false;
            remaining = total_cells;
            let GsScratch {
                sub_cells, arrange, ..
            } = &mut *worker.scratch;
            for cell in sub_cells.drain(..) {
                arrange.recycle_cell(cell);
            }
            out_cells = std::mem::take(&mut worker.out_cells);
            stats = std::mem::take(&mut worker.stats);
        } else {
            let workers = Self::resolved_workers(opts, worker.scratch.sub_cells.len());
            if workers <= 1 {
                worker.push_top_cells(leaves0);
                let (done, executed, dropped) = worker.run_local_budgeted(&mut view, ticker);
                explored += executed;
                completed = done;
                remaining = dropped;
                out_cells = std::mem::take(&mut worker.out_cells);
                stats = std::mem::take(&mut worker.stats);
            } else {
                let leaves0 = leaf_slice(&worker.scratch.arena, leaves0).to_vec();
                let top_cells: Vec<Cell> = worker.scratch.sub_cells.drain(..).collect();
                let root_stats = std::mem::take(&mut worker.stats);
                let shared = ticker.share();
                let outcome = Self::run_parallel(
                    ctx,
                    k,
                    q,
                    j,
                    workers,
                    opts.work_stealing,
                    leaves0,
                    top_cells,
                    root_stats,
                    Some(&shared),
                );
                ticker.absorb(&shared);
                explored += outcome.executed;
                completed = outcome.frontier.is_none();
                remaining = outcome.dropped;
                out_cells = outcome.cells;
                stats = outcome.stats;
            }
        }
        view.recycle_into(&mut worker.scratch.view_scratch);

        stats.elapsed_seconds = start.elapsed().as_secs_f64();
        BudgetedRun {
            result: MacSearchResult {
                cells: out_cells,
                stats,
            },
            completed,
            explored,
            remaining,
        }
    }

    /// Runs the top-level cells on `workers` scoped threads with (optional)
    /// work stealing. Each worker owns a private view of the (k,t)-core and a
    /// private scratch; seeds and stolen subtrees flow through one mutexed
    /// injector queue. Reports are path-tagged and merged by path sort, which
    /// reproduces the serial DFS emission order exactly.
    #[allow(clippy::too_many_arguments)]
    fn run_parallel(
        ctx: &SearchContext<'_>,
        k: u32,
        q: &[u32],
        j: usize,
        workers: usize,
        steal: bool,
        leaves0: Vec<u32>,
        top_cells: Vec<Cell>,
        root_stats: SearchStats,
        budget: Option<&SharedBudget>,
    ) -> ParallelOutcome {
        let mut stats = root_stats;
        stats.parallel_workers = workers;
        // Seeds are pushed reversed so the LIFO queue pops cell 0 first.
        let seeds: Vec<Stolen> = top_cells
            .into_iter()
            .enumerate()
            .rev()
            .map(|(i, cell)| Stolen {
                cell,
                leaves: leaves0.clone(),
                path: vec![i as u32],
                prefix_groups: Vec::new(),
            })
            .collect();
        let pool = SharedPool {
            state: Mutex::new(PoolState {
                queue: seeds,
                active: workers,
                done: false,
            }),
            cvar: Condvar::new(),
            idle: AtomicUsize::new(0),
            budget,
            steal,
        };

        let mut tagged: Vec<(Vec<u32>, CellResult)> = Vec::new();
        let mut executed = 0u64;
        let mut dropped = 0u64;
        let mut frontier: Option<Vec<u32>> = None;
        std::thread::scope(|scope| {
            let pool = &pool;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut scratch = GsScratch::new();
                        let mut worker = Worker::new(
                            ctx,
                            k,
                            q,
                            j,
                            &mut scratch,
                            true,
                            SearchStats::default(),
                            Vec::new(),
                        );
                        let mut view = SubgraphView::full(&ctx.local_graph);
                        let mut ticker = pool.budget.map(|b| b.worker());
                        let (executed, dropped, frontier) =
                            worker.run_pool(&mut view, pool, ticker.as_mut());
                        (
                            std::mem::take(&mut worker.out_cells),
                            std::mem::take(&mut worker.out_paths),
                            std::mem::take(&mut worker.stats),
                            executed,
                            dropped,
                            frontier,
                        )
                    })
                })
                .collect();
            for handle in handles {
                let (cells, paths, wstats, wexec, wdrop, wfrontier) =
                    handle.join().expect("GS worker panicked");
                stats.merge_worker(&wstats);
                executed += wexec;
                dropped += wdrop;
                if let Some(f) = wfrontier {
                    frontier = min_path(frontier.take(), f);
                }
                debug_assert_eq!(paths.len(), cells.len());
                tagged.extend(paths.into_iter().zip(cells));
            }
        });
        // A tripped budget can leave undistributed work in the queue: every
        // leftover item is a dropped subtree rooted at its path.
        let mut st = pool.state.into_inner().unwrap();
        for item in st.queue.drain(..) {
            dropped += 1;
            frontier = min_path(frontier, item.path);
        }

        tagged.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        if let Some(f) = &frontier {
            // Keep only reports strictly before the smallest dropped path —
            // those form a prefix of the serial output (a dropped subtree's
            // reports all sort at or after its root path).
            let cut = tagged.partition_point(|(p, _)| p < f);
            dropped += (tagged.len() - cut) as u64;
            tagged.truncate(cut);
        }
        ParallelOutcome {
            cells: tagged.into_iter().map(|(_, c)| c).collect(),
            stats,
            executed,
            dropped,
            frontier,
        }
    }
}

impl<'c, 'g, 's> Worker<'c, 'g, 's> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        ctx: &'c SearchContext<'g>,
        k: u32,
        q: &'c [u32],
        j: usize,
        scratch: &'s mut GsScratch,
        record_paths: bool,
        stats: SearchStats,
        out_cells: Vec<CellResult>,
    ) -> Self {
        Worker {
            ctx,
            k,
            q,
            j,
            scratch,
            record_paths,
            out_cells,
            out_paths: Vec::new(),
            stats,
        }
    }

    /// Builds the root state: the region cell, the initial leaves (appended
    /// at arena position 0), and the root arrangement (left in
    /// `scratch.sub_cells`). Returns the initial leaf range.
    fn prepare_root(&mut self, view: &SubgraphView<'_>) -> LeafRange {
        self.scratch.root_cell.assign_region(&self.ctx.query.region);
        let cell_bytes = self.scratch.root_cell.memory_bytes();
        self.account_memory(view, cell_bytes, 1);
        {
            let GsScratch {
                arena, leaf_mark, ..
            } = &mut *self.scratch;
            debug_assert!(arena.is_empty());
            self.ctx
                .gd
                .leaves_within_into(view.alive_mask(), leaf_mark, arena);
        }
        let leaves0 = LeafRange {
            start: 0,
            len: self.scratch.arena.len() as u32,
        };
        self.compute_halfspaces(leaves0, LeafRange::EMPTY);
        let n = {
            let GsScratch {
                arrange,
                hps_buf,
                hs_store,
                sub_cells,
                root_cell,
                ..
            } = &mut *self.scratch;
            arrange_into(
                arrange,
                root_cell,
                hps_buf.iter().map(|&i| &hs_store[i as usize]),
                sub_cells,
            )
        };
        self.stats.partitions_explored += n;
        leaves0
    }

    /// Queues every root-arrangement cell as a depth-1 `Visit`, in order.
    fn push_top_cells(&mut self, leaves0: LeafRange) {
        let GsScratch {
            sub_cells, stack, ..
        } = &mut *self.scratch;
        for (i, cell) in sub_cells.drain(..).enumerate().rev() {
            stack.push(Task::Visit {
                cell,
                leaves: leaves0,
                depth: 1,
                idx: i as u32,
            });
        }
    }

    /// Drains the task stack to completion.
    fn run_local(&mut self, view: &mut SubgraphView<'_>) {
        while let Some(task) = self.scratch.stack.pop() {
            self.run_task(view, task);
        }
    }

    /// Budgeted [`run_local`](Self::run_local): charges one unit per popped
    /// task. On exhaustion the remaining stack is unwound — pending `Retreat`
    /// rollbacks are applied innermost-first so the shared view (and the
    /// deletion history) return to the untouched (k,t)-core state, while
    /// dropped `Visit`/`Arrange` tasks are only counted. Returns
    /// `(completed, tasks executed, tasks dropped)`.
    fn run_local_budgeted(
        &mut self,
        view: &mut SubgraphView<'_>,
        ticker: &mut BudgetTicker,
    ) -> (bool, u64, u64) {
        let mut executed = 0u64;
        while let Some(task) = self.scratch.stack.pop() {
            if !ticker.charge(1) {
                let mut dropped = 0u64;
                let mut next = Some(task);
                while let Some(t) = next {
                    match t {
                        Task::Retreat { cp, arena_mark } => {
                            self.apply_retreat(view, cp, arena_mark);
                        }
                        Task::Visit { cell, .. } | Task::Arrange { cell, .. } => {
                            dropped += 1;
                            self.scratch.arrange.recycle_cell(cell);
                        }
                    }
                    next = self.scratch.stack.pop();
                }
                debug_assert!(self.scratch.deletion_groups.is_empty());
                return (false, executed, dropped);
            }
            executed += 1;
            self.run_task(view, task);
        }
        (true, executed, 0)
    }

    /// Work-stealing main loop: pull seeds/stolen subtrees from the pool,
    /// replay their deletion prefix, explore, donate pending subtrees to idle
    /// workers, and (when budgeted) charge per task through the shared
    /// ticker. Returns `(executed, dropped, local frontier)`.
    fn run_pool(
        &mut self,
        view: &mut SubgraphView<'_>,
        pool: &SharedPool<'_>,
        mut ticker: Option<&mut WorkerTicker<'_>>,
    ) -> (u64, u64, Option<Vec<u32>>) {
        let mut executed = 0u64;
        let mut dropped = 0u64;
        let mut frontier: Option<Vec<u32>> = None;
        while let Some(item) = get_work(pool) {
            let Stolen {
                cell,
                leaves,
                path,
                prefix_groups,
            } = item;
            let depth = path.len() as u32;
            if depth > 1 {
                // Depth-1 items are the seeded top-level cells (ordinary
                // distribution); anything deeper migrated mid-flight.
                self.stats.tasks_stolen += 1;
            }
            let cp0 = view.checkpoint();
            for group in &prefix_groups {
                for &v in group {
                    // Replay order within/across groups is irrelevant: the
                    // final alive set and the degrees of alive vertices only
                    // depend on *which* vertices died.
                    let _ = view.delete_single(v);
                }
            }
            let arena_base = self.scratch.arena.len() as u32;
            let idx = *path.last().expect("stolen path is never empty");
            {
                let GsScratch {
                    arena,
                    cur_path,
                    deletion_groups,
                    stack,
                    ..
                } = &mut *self.scratch;
                cur_path.clear();
                cur_path.extend_from_slice(&path);
                deletion_groups.extend(prefix_groups);
                let start = arena.len() as u32;
                let len = leaves.len() as u32;
                arena.extend_from_slice(&leaves);
                stack.push(Task::Visit {
                    cell,
                    leaves: LeafRange { start, len },
                    depth,
                    idx,
                });
            }

            let mut pops = 0u32;
            while let Some(task) = self.scratch.stack.pop() {
                if let Some(t) = ticker.as_deref_mut() {
                    if !t.charge(1) {
                        // Budget tripped mid-subtree: unwind, recording the
                        // smallest dropped path so the coordinator can cut
                        // the merged output to a coherent prefix.
                        let mut next = Some(task);
                        while let Some(tk) = next {
                            match tk {
                                Task::Retreat { cp, arena_mark } => {
                                    self.apply_retreat(view, cp, arena_mark);
                                }
                                Task::Visit {
                                    cell, depth, idx, ..
                                } => {
                                    dropped += 1;
                                    let d = depth as usize;
                                    let mut p = Vec::with_capacity(d);
                                    p.extend_from_slice(&self.scratch.cur_path[..d - 1]);
                                    p.push(idx);
                                    frontier = min_path(frontier, p);
                                    self.scratch.arrange.recycle_cell(cell);
                                }
                                Task::Arrange { cell, depth, .. } => {
                                    // An arrange is the descent *into* the
                                    // subtree rooted at its parent's path.
                                    dropped += 1;
                                    let d = depth as usize;
                                    let p = self.scratch.cur_path[..d - 1].to_vec();
                                    frontier = min_path(frontier, p);
                                    self.scratch.arrange.recycle_cell(cell);
                                }
                            }
                            next = self.scratch.stack.pop();
                        }
                        break;
                    }
                }
                executed += 1;
                pops += 1;
                if pops.is_multiple_of(16) {
                    self.try_donate(pool);
                }
                self.run_task(view, task);
            }

            // Retire the prefix seeds and restore the untouched core state.
            {
                let GsScratch {
                    deletion_groups,
                    spare_groups,
                    ..
                } = &mut *self.scratch;
                while let Some(g) = deletion_groups.pop() {
                    spare_groups.push(g);
                }
            }
            view.rollback(cp0);
            self.scratch.arena.truncate(arena_base as usize);
        }
        (executed, dropped, frontier)
    }

    /// Donates the bottom-most pending `Visit` (the largest unexplored
    /// subtree) to the pool if another worker is idle. Safe to remove from
    /// the middle of the stack: a `Visit` owns no checkpoint, and its
    /// ancestor groups/path entries stay in place until the `Retreat`s below
    /// it run.
    fn try_donate(&mut self, pool: &SharedPool<'_>) {
        if !pool.steal || pool.idle.load(Ordering::Relaxed) == 0 {
            return;
        }
        let Some(pos) = self
            .scratch
            .stack
            .iter()
            .position(|t| matches!(t, Task::Visit { .. }))
        else {
            return;
        };
        let Task::Visit {
            cell,
            leaves,
            depth,
            idx,
        } = self.scratch.stack.remove(pos)
        else {
            unreachable!("position matched a Visit");
        };
        let d = depth as usize;
        let GsScratch {
            arena,
            cur_path,
            deletion_groups,
            ..
        } = &*self.scratch;
        let mut path = Vec::with_capacity(d);
        path.extend_from_slice(&cur_path[..d - 1]);
        path.push(idx);
        let item = Stolen {
            cell,
            leaves: leaf_slice(arena, leaves).to_vec(),
            path,
            prefix_groups: deletion_groups[..d - 1].to_vec(),
        };
        let mut st = pool.state.lock().unwrap();
        st.queue.push(item);
        drop(st);
        pool.cvar.notify_one();
    }

    fn run_task(&mut self, view: &mut SubgraphView<'_>, task: Task) {
        match task {
            Task::Arrange {
                cell,
                settled,
                depth,
            } => self.arrange_state(view, cell, settled, depth),
            Task::Visit {
                cell,
                leaves,
                depth,
                idx,
            } => {
                let cur_path = &mut self.scratch.cur_path;
                cur_path.truncate(depth as usize - 1);
                cur_path.push(idx);
                self.visit_cell(view, cell, leaves, depth);
            }
            Task::Retreat { cp, arena_mark } => self.apply_retreat(view, cp, arena_mark),
        }
    }

    #[inline]
    fn apply_retreat(&mut self, view: &mut SubgraphView<'_>, cp: Checkpoint, arena_mark: u32) {
        let GsScratch {
            deletion_groups,
            spare_groups,
            arena,
            ..
        } = &mut *self.scratch;
        if let Some(g) = deletion_groups.pop() {
            spare_groups.push(g);
        }
        view.rollback(cp);
        arena.truncate(arena_mark as usize);
    }

    /// Track an approximate peak of live search memory (Fig. 11(d)): the DFS
    /// path holds one view plus per-level cells and deletion groups.
    fn account_memory(&mut self, view: &SubgraphView<'_>, cell_bytes: usize, depth: u32) {
        let live_bytes = self.ctx.gd.memory_bytes()
            + view.alive_mask().len() * 5
            + depth as usize * cell_bytes
            + self
                .scratch
                .deletion_groups
                .iter()
                .map(|g| g.len() * std::mem::size_of::<u32>())
                .sum::<usize>();
        self.stats.memory_bytes = self.stats.memory_bytes.max(live_bytes);
    }

    /// Computes (or locates) the new hyperplanes among `leaves` into
    /// `hps_buf`; `settled` is sorted (leaves come out in increasing id
    /// order), and pairs of settled leaves are already separated by the
    /// arrangement that produced the current cell, so their half-spaces need
    /// not be re-inserted (the "directly locate" optimization of Section
    /// V-B). Half-spaces are pooled in `hs_store` and indexed per query.
    fn compute_halfspaces(&mut self, leaves: LeafRange, settled: LeafRange) {
        let GsScratch {
            arena,
            hs_index,
            hs_store,
            hs_cursor,
            hps_buf,
            ..
        } = &mut *self.scratch;
        let leaf_ids = leaf_slice(arena, leaves);
        let settled_ids = leaf_slice(arena, settled);
        let is_settled = |v: u32| settled_ids.binary_search(&v).is_ok();
        hps_buf.clear();
        for (i, &a) in leaf_ids.iter().enumerate() {
            for &b in leaf_ids.iter().skip(i + 1) {
                if is_settled(a) && is_settled(b) {
                    continue;
                }
                let key = (a.min(b), a.max(b));
                let slot = match hs_index.get(&key) {
                    Some(&slot) => slot,
                    None => {
                        self.stats.halfspaces_computed += 1;
                        let slot = *hs_cursor;
                        if slot < hs_store.len() {
                            hs_store[slot].assign_score_at_least(
                                self.ctx.attrs.row(key.0 as usize),
                                self.ctx.attrs.row(key.1 as usize),
                            );
                        } else {
                            hs_store.push(HalfSpace::score_at_least(
                                self.ctx.attrs.row(key.0 as usize),
                                self.ctx.attrs.row(key.1 as usize),
                            ));
                        }
                        *hs_cursor = slot + 1;
                        hs_index.insert(key, slot as u32);
                        slot as u32
                    }
                };
                hps_buf.push(slot);
            }
        }
        self.stats.halfspace_insertions += hps_buf.len();
    }

    /// The `explore` step: arrange the current leaves' half-spaces within
    /// `cell` and queue the resulting sub-cells for visiting (in order).
    fn arrange_state(
        &mut self,
        view: &mut SubgraphView<'_>,
        cell: Cell,
        settled: LeafRange,
        depth: u32,
    ) {
        self.account_memory(view, cell.memory_bytes(), depth);
        let start = self.scratch.arena.len() as u32;
        {
            let GsScratch {
                arena, leaf_mark, ..
            } = &mut *self.scratch;
            self.ctx
                .gd
                .leaves_within_into(view.alive_mask(), leaf_mark, arena);
        }
        let leaves = LeafRange {
            start,
            len: self.scratch.arena.len() as u32 - start,
        };
        self.compute_halfspaces(leaves, settled);
        let n = {
            let GsScratch {
                arrange,
                hps_buf,
                hs_store,
                sub_cells,
                ..
            } = &mut *self.scratch;
            arrange_into(
                arrange,
                &cell,
                hps_buf.iter().map(|&i| &hs_store[i as usize]),
                sub_cells,
            )
        };
        self.stats.partitions_explored += n;
        self.scratch.arrange.recycle_cell(cell);
        let GsScratch {
            sub_cells, stack, ..
        } = &mut *self.scratch;
        for (i, sub_cell) in sub_cells.drain(..).enumerate().rev() {
            stack.push(Task::Visit {
                cell: sub_cell,
                leaves,
                depth,
                idx: i as u32,
            });
        }
    }

    /// One sub-cell decision (lines 13–20 of Algorithm 1).
    fn visit_cell(
        &mut self,
        view: &mut SubgraphView<'_>,
        cell: Cell,
        leaves: LeafRange,
        depth: u32,
    ) {
        let ctx = self.ctx;
        if !cell.sample_point_into(&mut self.scratch.sample_buf) {
            self.scratch.arrange.recycle_cell(cell);
            return;
        }
        // Within the sub-partition the relative order of the leaves is fixed,
        // so the minimum at the sample point is the minimum everywhere in the
        // cell. Exact score ties (e.g. identical attribute vectors, which no
        // half-space can separate) are broken by smallest id — the same rule
        // the fixed-weight peeling oracle applies, so both explorations delete
        // the same vertex.
        let u = {
            let GsScratch {
                arena, sample_buf, ..
            } = &*self.scratch;
            let w: &[f64] = sample_buf;
            leaf_slice(arena, leaves)
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    ctx.score(a, w)
                        .total_cmp(&ctx.score(b, w))
                        .then_with(|| a.cmp(&b))
                })
                .expect("a state always has at least one alive leaf")
        };

        // Corollary 1(1): the smallest-score vertex is a query vertex.
        if self.q.contains(&u) {
            self.report_cell(view, cell);
            return;
        }
        // Tentative deletion (lines 15-20) behind a checkpoint.
        let cp = view.checkpoint();
        view.delete_cascade_logged(u, self.k);
        let mut ok = self.q.iter().all(|&qv| view.is_alive(qv));
        if ok {
            view.retain_component_of_logged(self.q[0]);
            ok = self.q.iter().all(|&qv| view.is_alive(qv));
        }
        if !ok {
            // Corollary 1(2): deleting u destroys the community, so the
            // parent community is the non-contained MAC of this cell.
            view.rollback(cp);
            self.report_cell(view, cell);
            return;
        }
        {
            let GsScratch {
                deletion_groups,
                spare_groups,
                stack,
                arena,
                ..
            } = &mut *self.scratch;
            let mut group = spare_groups.pop().unwrap_or_default();
            group.clear();
            group.extend_from_slice(view.log_since(cp));
            deletion_groups.push(group);
            stack.push(Task::Retreat {
                cp,
                arena_mark: arena.len() as u32,
            });
            stack.push(Task::Arrange {
                cell,
                settled: leaves,
                depth: depth + 1,
            });
        }
    }

    /// Reports one finished cell: the current community plus, for top-j mode,
    /// the supersets obtained by backtracking the deletion history. All
    /// output buffers come from (and eventually return to) the scratch pools.
    fn report_cell(&mut self, view: &SubgraphView<'_>, cell: Cell) {
        let ctx = self.ctx;
        let target = (1 + self.scratch.deletion_groups.len()).min(self.j.max(1));
        let mut res = self
            .scratch
            .spare_results
            .pop()
            .unwrap_or_else(|| CellResult {
                cell: empty_cell(),
                sample_weight: Vec::new(),
                communities: Vec::new(),
            });
        let husk = std::mem::replace(&mut res.cell, cell);
        self.scratch.arrange.recycle_cell(husk);
        res.sample_weight.clear();
        res.sample_weight
            .extend_from_slice(&self.scratch.sample_buf);
        while res.communities.len() > target {
            let c = res.communities.pop().expect("len > target >= 0");
            self.scratch.spare_communities.push(c);
        }
        while res.communities.len() < target {
            let c = self
                .scratch
                .spare_communities
                .pop()
                .unwrap_or_else(|| Community::new(Vec::new()));
            res.communities.push(c);
        }
        {
            let GsScratch {
                alive_buf,
                deletion_groups,
                ..
            } = &mut *self.scratch;
            view.alive_vertices_into(alive_buf);
            ctx.community_from_locals_into(alive_buf, &mut res.communities[0]);
            for (slot, group) in (1..target).zip(deletion_groups.iter().rev()) {
                alive_buf.extend(group.iter().copied());
                ctx.community_from_locals_into(alive_buf, &mut res.communities[slot]);
            }
        }
        self.out_cells.push(res);
        if self.record_paths {
            self.out_paths.push(self.scratch.cur_path.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::peel_at_weight;
    use rsn_geom::region::PrefRegion;
    use rsn_graph::graph::Graph;
    use rsn_road::network::{Location, RoadNetwork};

    /// The two-K4 network of the peel tests: {0,1,2,3} and {0,1,4,5} share the
    /// edge (0,1); attribute space splits them cleanly.
    fn network() -> RoadSocialNetwork {
        let social = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (0, 4),
                (0, 5),
                (1, 4),
                (1, 5),
                (4, 5),
            ],
        );
        let road = RoadNetwork::from_edges(2, &[(0, 1, 1.0)]);
        let locations = vec![Location::vertex(0); 6];
        let attrs = vec![
            vec![6.0, 6.0],
            vec![6.0, 6.0],
            vec![9.0, 1.0],
            vec![8.0, 2.0],
            vec![1.0, 9.0],
            vec![2.0, 8.0],
        ];
        RoadSocialNetwork::new(social, road, locations, attrs).unwrap()
    }

    #[test]
    fn gs_nc_partitions_region_by_preference() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0, 1], 3, 10.0, region);
        let gs = GlobalSearch::new(&rsn, &query);
        let result = gs.run_non_contained().unwrap();
        assert!(!result.is_empty());
        // both sides must appear among the distinct non-contained MACs
        let distinct = result.distinct_communities();
        let has_left = distinct.iter().any(|c| c.vertices == vec![0, 1, 2, 3]);
        let has_right = distinct.iter().any(|c| c.vertices == vec![0, 1, 4, 5]);
        assert!(has_left && has_right, "distinct = {distinct:?}");
        assert!(result.stats.kt_core_vertices == 6);
        assert!(result.stats.partitions_explored >= 2);
    }

    #[test]
    fn gs_nc_cells_agree_with_fixed_weight_peeling() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0, 1], 3, 10.0, region);
        let gs = GlobalSearch::new(&rsn, &query);
        let result = gs.run_non_contained().unwrap();
        let ctx = SearchContext::build(&rsn, &query).unwrap().unwrap();
        for cell in &result.cells {
            let oracle = peel_at_weight(&ctx, &cell.sample_weight);
            let expect = ctx.community_from_locals(&oracle.final_vertices);
            assert_eq!(
                cell.communities[0].vertices, expect.vertices,
                "cell with sample {:?} disagrees with the peeling oracle",
                cell.sample_weight
            );
        }
    }

    #[test]
    fn gs_top_j_returns_nested_communities() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0, 1], 3, 10.0, region).with_top_j(2);
        let gs = GlobalSearch::new(&rsn, &query);
        let result = gs.run_top_j().unwrap();
        assert!(!result.is_empty());
        for cell in &result.cells {
            assert!(!cell.communities.is_empty() && cell.communities.len() <= 2);
            for pair in cell.communities.windows(2) {
                assert!(pair[1].contains_all(&pair[0]));
                assert!(pair[1].len() > pair[0].len());
            }
            // every community is a connected k-core containing the query
            for c in &cell.communities {
                assert!(c.contains(0) && c.contains(1));
            }
        }
    }

    #[test]
    fn gs_empty_when_no_kt_core() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0], 5, 10.0, region);
        let gs = GlobalSearch::new(&rsn, &query);
        let result = gs.run_non_contained().unwrap();
        assert!(result.is_empty());
        assert_eq!(result.stats.kt_core_vertices, 0);
    }

    #[test]
    fn gs_single_attribute_degenerates_to_single_cell() {
        // d = 1: the preference domain is 0-dimensional, so the answer is a
        // single cell identical to a fixed-weight peel.
        let social = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3), (1, 3), (0, 3)]);
        let road = RoadNetwork::from_edges(1, &[]);
        let locations = vec![Location::vertex(0); 4];
        let attrs = vec![vec![4.0], vec![3.0], vec![2.0], vec![1.0]];
        let rsn = RoadSocialNetwork::new(social, road, locations, attrs).unwrap();
        let region = PrefRegion::from_ranges(&[]).unwrap();
        let query = MacQuery::new(vec![0], 2, 10.0, region);
        let result = GlobalSearch::new(&rsn, &query).run_non_contained().unwrap();
        assert_eq!(result.num_cells(), 1);
        // vertices 3 then 2 are peeled away (scores 1 and 2), leaving the
        // triangle {0,1,2}.
        assert_eq!(result.cells[0].communities[0].vertices, vec![0, 1, 2]);
    }

    #[test]
    fn scratch_reuse_across_queries_matches_fresh_scratch() {
        // The same scratch run back-to-back over different queries must give
        // the same answers as a fresh scratch per query (pools fully reset).
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let queries = [
            MacQuery::new(vec![0, 1], 3, 10.0, region.clone()).with_top_j(2),
            MacQuery::new(vec![0], 2, 10.0, region.clone()),
            MacQuery::new(vec![0, 1], 3, 10.0, region).with_top_j(3),
        ];
        let mut warm = GsScratch::new();
        for query in &queries {
            let ctx = SearchContext::build(&rsn, query).unwrap().unwrap();
            let mut fresh = GsScratch::new();
            let expect =
                GlobalSearch::explore_context(&ctx, &mut fresh, GsOptions::default(), true);
            // run twice on the warm scratch, recycling in between, to push
            // every pool through at least one reuse cycle
            let first = GlobalSearch::explore_context(&ctx, &mut warm, GsOptions::default(), true);
            assert_results_identical(&expect, &first);
            warm.recycle(first);
            let second = GlobalSearch::explore_context(&ctx, &mut warm, GsOptions::default(), true);
            assert_results_identical(&expect, &second);
            warm.recycle(second);
        }
    }

    /// Serial and parallel runs must produce identical cell sequences — same
    /// order, same sample weights, same communities.
    fn assert_results_identical(a: &MacSearchResult, b: &MacSearchResult) {
        assert_eq!(a.cells.len(), b.cells.len(), "cell count diverged");
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.sample_weight, cb.sample_weight);
            assert_eq!(
                ca.communities
                    .iter()
                    .map(|c| &c.vertices)
                    .collect::<Vec<_>>(),
                cb.communities
                    .iter()
                    .map(|c| &c.vertices)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn parallel_gs_matches_serial_exactly() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        for top_j in [false, true] {
            let query = MacQuery::new(vec![0, 1], 3, 10.0, region.clone()).with_top_j(2);
            let serial = GlobalSearch::new(&rsn, &query);
            let serial_result = if top_j {
                serial.run_top_j().unwrap()
            } else {
                serial.run_non_contained().unwrap()
            };
            for workers in [2usize, 4, 0] {
                for stealing in [true, false] {
                    let par = GlobalSearch::new(&rsn, &query).with_opts(GsOptions {
                        parallelism: workers,
                        work_stealing: stealing,
                    });
                    let par_result = if top_j {
                        par.run_top_j().unwrap()
                    } else {
                        par.run_non_contained().unwrap()
                    };
                    assert_results_identical(&serial_result, &par_result);
                    assert_eq!(
                        serial_result.stats.partitions_explored,
                        par_result.stats.partitions_explored
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_gs_matches_serial_on_randomized_networks() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(0x6570);
        let mut threaded_rounds = 0;
        for round in 0..6 {
            let n = rng.random_range(12..30usize);
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.random_range(0.0..1.0) < 0.35 {
                        edges.push((u, v));
                    }
                }
            }
            let social = Graph::from_edges(n, &edges);
            let road = RoadNetwork::from_edges(1, &[]);
            let locations = vec![Location::vertex(0); n];
            let attrs: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..3).map(|_| rng.random_range(0.0..10.0)).collect())
                .collect();
            let rsn = RoadSocialNetwork::new(social, road, locations, attrs).unwrap();
            let region = PrefRegion::from_ranges(&[(0.1, 0.6), (0.15, 0.5)]).unwrap();
            let query = MacQuery::new(vec![0], 3, 10.0, region).with_top_j(2);
            let serial = GlobalSearch::new(&rsn, &query).run_top_j().unwrap();
            for stealing in [true, false] {
                let parallel = GlobalSearch::new(&rsn, &query)
                    .with_opts(GsOptions {
                        parallelism: 3,
                        work_stealing: stealing,
                    })
                    .run_top_j()
                    .unwrap();
                assert_results_identical(&serial, &parallel);
                let workers = parallel.stats.parallel_workers;
                // 0 only when the root arrangement yields a single top-level
                // cell under static distribution (the run is forced serial);
                // with stealing a single top cell still fans out, so the
                // worker count is always the requested 3.
                if stealing {
                    assert_eq!(workers, 3, "round {round}: stealing run not threaded");
                } else {
                    assert!(
                        workers == 0 || (2..=3).contains(&workers),
                        "round {round}: implausible worker count {workers}"
                    );
                }
                if workers > 0 {
                    threaded_rounds += 1;
                }
            }
        }
        assert!(
            threaded_rounds > 0,
            "no round exercised the threaded exploration path"
        );
    }
}

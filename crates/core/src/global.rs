//! Global search: the DFS-based Algorithm 1 (`GS-T` / `GS-NC`).
//!
//! Starting from the maximal (k,t)-core `H^t_k`, the algorithm explores
//! `(subgraph, sub-partition of R, deletion history)` states depth-first. For
//! a state it determines the candidate smallest-score vertices — the leaves of
//! the current r-dominance graph — inserts the half-spaces between them into a
//! local arrangement of the state's cell (Algorithm 2), and in every resulting
//! sub-partition deletes the smallest-score vertex with the DFS cascade
//! (lines 15–20). When Corollary 1 fires, the state's community is reported as
//! the non-contained MAC of that sub-partition, and the top-j MACs are
//! recovered by backtracking the deletion history.
//!
//! Two engine-level departures from a literal transcription of the paper:
//!
//! * **Explicit stack.** The exploration runs on an explicit task stack
//!   (the private `Task` enum) instead of call recursion, so the search depth
//!   is bounded by heap memory rather than thread stack — peel paths through a
//!   10^5-vertex (k,t)-core are just more stack entries. A worker shares
//!   **one** [`SubgraphView`] across all branches: a `Task::Retreat` entry rolls the
//!   view back to the checkpoint taken when the branch was entered, so sibling
//!   cells reuse the same scratch state and no per-branch clones happen.
//!
//! * **Parallel top-level cells.** The sub-partitions produced by the root
//!   arrangement are independent: each starts from the untouched (k,t)-core
//!   and explores its own region of `R`. With
//!   [`with_parallelism`](GlobalSearch::with_parallelism) they are distributed
//!   over a small scoped-thread pool — every worker owns a private
//!   checkpointed view (rollback stays worker-local) and pulls the next
//!   unclaimed cell from a shared atomic cursor, and results are merged in
//!   root-cell order so the output is identical to the serial run.

use crate::context::SearchContext;
use crate::error::MacError;
use crate::network::RoadSocialNetwork;
use crate::query::MacQuery;
use crate::result::{BudgetedRun, CellResult, Community, MacSearchResult, SearchStats};
use rsn_geom::cell::Cell;
use rsn_geom::halfspace::HalfSpace;
use rsn_geom::partition::arrange;
use rsn_graph::subgraph::{Checkpoint, SubgraphView};
use rsn_road::budget::BudgetTicker;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// The DFS-based global search algorithm of Section V.
#[derive(Debug, Clone)]
pub struct GlobalSearch<'a> {
    rsn: &'a RoadSocialNetwork,
    query: &'a MacQuery,
    parallelism: usize,
}

/// One unit of deferred work on a worker's explicit DFS stack.
///
/// The stack discipline mirrors the recursion it replaces: `Arrange` plays the
/// role of a recursive `explore` call, `Visit` is one iteration of its
/// sub-cell loop, and `Retreat` is the code after the recursive call returned
/// (pop the deletion group, roll the shared view back).
enum Task {
    /// Arrange the half-spaces among the current leaves inside `cell` and
    /// queue a `Visit` per resulting sub-cell. `settled` holds the parent
    /// state's leaves (their pairwise half-spaces are already separated).
    Arrange {
        cell: Cell,
        settled: Rc<Vec<u32>>,
        depth: usize,
    },
    /// Decide one sub-cell: report its community or tentatively delete the
    /// smallest-score vertex and descend.
    Visit {
        cell: Cell,
        leaves: Rc<Vec<u32>>,
        depth: usize,
    },
    /// Return from a descent: pop the deletion group and roll back.
    Retreat { cp: Checkpoint },
}

/// Per-worker exploration state. Workers never share mutable state; each owns
/// its stack, half-space cache, deletion history, and output buffer.
struct Worker<'c, 'g> {
    ctx: &'c SearchContext<'g>,
    k: u32,
    q: &'c [u32],
    j: usize,
    /// Half-spaces between leaf pairs, computed once per pair per worker.
    hs_cache: HashMap<(u32, u32), HalfSpace>,
    /// Deletion groups committed along the current DFS path (push on
    /// descend, pop on retreat) — the backtracking history for top-j.
    deletion_groups: Vec<Vec<u32>>,
    stack: Vec<Task>,
    out_cells: Vec<CellResult>,
    stats: SearchStats,
}

impl<'a> GlobalSearch<'a> {
    /// Creates a (serial) global search for one query.
    pub fn new(rsn: &'a RoadSocialNetwork, query: &'a MacQuery) -> Self {
        GlobalSearch {
            rsn,
            query,
            parallelism: 1,
        }
    }

    /// Sets the number of worker threads exploring independent top-level GS
    /// cells. `1` (the default) runs serially on the calling thread; `0`
    /// resolves to the machine's available parallelism. Results are identical
    /// at any setting — cells are merged in deterministic root order.
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Problem 2: the non-contained MAC for every partition of `R` (GS-NC).
    pub fn run_non_contained(&self) -> Result<MacSearchResult, MacError> {
        self.run(false)
    }

    /// Problem 1: the top-j MACs for every partition of `R` (GS-T).
    pub fn run_top_j(&self) -> Result<MacSearchResult, MacError> {
        self.run(true)
    }

    fn resolved_workers(parallelism: usize, top_cells: usize) -> usize {
        let requested = if parallelism == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            parallelism
        };
        requested.max(1).min(top_cells.max(1))
    }

    fn run(&self, top_j_mode: bool) -> Result<MacSearchResult, MacError> {
        let start = Instant::now();
        let Some(ctx) = SearchContext::build(self.rsn, self.query)? else {
            return Ok(MacSearchResult {
                cells: Vec::new(),
                stats: SearchStats {
                    elapsed_seconds: start.elapsed().as_secs_f64(),
                    ..SearchStats::default()
                },
            });
        };
        let mut result = Self::explore_context(&ctx, self.parallelism, top_j_mode);
        result.stats.elapsed_seconds = start.elapsed().as_secs_f64();
        Ok(result)
    }

    /// Explores a prebuilt [`SearchContext`] to completion — the engine-level
    /// entry point shared by the one-shot wrappers
    /// ([`run_non_contained`](Self::run_non_contained) /
    /// [`run_top_j`](Self::run_top_j)) and by
    /// [`QuerySession`](crate::session::QuerySession), which builds the
    /// context from session-held scratch. `elapsed_seconds` covers only the
    /// exploration; callers overwrite it with their end-to-end timing.
    pub(crate) fn explore_context(
        ctx: &SearchContext<'_>,
        parallelism: usize,
        top_j_mode: bool,
    ) -> MacSearchResult {
        let start = Instant::now();
        let base_stats = SearchStats {
            kt_core_vertices: ctx.core_size(),
            kt_core_edges: ctx.core_edges(),
            dominance_tests: ctx.gd.tests_performed(),
            memory_bytes: ctx.gd.memory_bytes(),
            ..SearchStats::default()
        };
        let k = ctx.query.k;
        let q = ctx.local_q.clone();
        let j = if top_j_mode { ctx.query.j } else { 1 };

        // Root arrangement: determines the independent top-level cells.
        let root_cell = Cell::from_region(&ctx.query.region);
        let mut root_worker = Worker::new(ctx, k, &q, j, base_stats);
        let mut view = SubgraphView::full(&ctx.local_graph);
        root_worker.account_memory(&view, &root_cell, 1);
        let leaves0: Vec<u32> = ctx
            .gd
            .leaves_within(view.alive_mask())
            .into_iter()
            .map(|v| v as u32)
            .collect();
        let hps = root_worker.halfspaces(&leaves0, &[]);
        let top_cells = arrange(&root_cell, &hps);
        root_worker.stats.partitions_explored += top_cells.len();

        let workers = Self::resolved_workers(parallelism, top_cells.len());
        let (out_cells, mut stats) = if workers <= 1 {
            // Serial: one worker, one view, cells in root order.
            let leaves0 = Rc::new(leaves0);
            for cell in top_cells {
                root_worker.run_top_cell(&mut view, cell, leaves0.clone());
            }
            (root_worker.out_cells, root_worker.stats)
        } else {
            Self::run_parallel(
                ctx,
                k,
                &q,
                j,
                workers,
                leaves0,
                &top_cells,
                root_worker.stats,
            )
        };

        stats.elapsed_seconds = start.elapsed().as_secs_f64();
        MacSearchResult {
            cells: out_cells,
            stats,
        }
    }

    /// Budgeted [`explore_context`](Self::explore_context): always serial (a
    /// shared ticker cannot be split across workers, and the serial order
    /// guarantees a partial run's cells are a prefix of the full run's), the
    /// exploration charges one unit per DFS task and stops cooperatively.
    /// Cells reported before exhaustion are exact; `remaining` counts the
    /// tasks and top-level cells known to be left undone.
    pub(crate) fn explore_context_budgeted(
        ctx: &SearchContext<'_>,
        top_j_mode: bool,
        ticker: &mut BudgetTicker,
    ) -> BudgetedRun {
        let start = Instant::now();
        let mut base_stats = SearchStats {
            kt_core_vertices: ctx.core_size(),
            kt_core_edges: ctx.core_edges(),
            dominance_tests: ctx.gd.tests_performed(),
            memory_bytes: ctx.gd.memory_bytes(),
            ..SearchStats::default()
        };
        let k = ctx.query.k;
        let q = ctx.local_q.clone();
        let j = if top_j_mode { ctx.query.j } else { 1 };

        // Guard before the root arrangement, whose half-space set is
        // quadratic in the initial leaf count.
        if !ticker.charge(1) {
            base_stats.elapsed_seconds = start.elapsed().as_secs_f64();
            return BudgetedRun {
                result: MacSearchResult {
                    cells: Vec::new(),
                    stats: base_stats,
                },
                completed: false,
                explored: 0,
                remaining: 1,
            };
        }

        let root_cell = Cell::from_region(&ctx.query.region);
        let mut root_worker = Worker::new(ctx, k, &q, j, base_stats);
        let mut view = SubgraphView::full(&ctx.local_graph);
        root_worker.account_memory(&view, &root_cell, 1);
        let leaves0: Vec<u32> = ctx
            .gd
            .leaves_within(view.alive_mask())
            .into_iter()
            .map(|v| v as u32)
            .collect();
        let hps = root_worker.halfspaces(&leaves0, &[]);
        let top_cells = arrange(&root_cell, &hps);
        root_worker.stats.partitions_explored += top_cells.len();
        let total_cells = top_cells.len() as u64;

        let mut explored = 1u64;
        let mut remaining = 0u64;
        let mut completed = true;
        // Charge the root arrangement after the fact, then walk the
        // top-level cells in the serial order.
        if !ticker.charge(leaves0.len() as u64 + total_cells) {
            completed = false;
            remaining = total_cells;
        } else {
            let leaves0 = Rc::new(leaves0);
            for (i, cell) in top_cells.into_iter().enumerate() {
                let (done, cell_explored, dropped) =
                    root_worker.run_top_cell_budgeted(&mut view, cell, leaves0.clone(), ticker);
                explored += cell_explored;
                if !done {
                    completed = false;
                    remaining = dropped + (total_cells - i as u64 - 1);
                    break;
                }
            }
        }

        let mut stats = root_worker.stats;
        stats.elapsed_seconds = start.elapsed().as_secs_f64();
        BudgetedRun {
            result: MacSearchResult {
                cells: root_worker.out_cells,
                stats,
            },
            completed,
            explored,
            remaining,
        }
    }

    /// Distributes the top-level cells over `workers` scoped threads. Each
    /// worker owns a fresh full [`SubgraphView`] of the (k,t)-core (the state
    /// every top-level cell starts from) and claims cells through a shared
    /// atomic cursor; per-cell outputs are merged in root order afterwards.
    #[allow(clippy::too_many_arguments)]
    fn run_parallel(
        ctx: &SearchContext<'_>,
        k: u32,
        q: &[u32],
        j: usize,
        workers: usize,
        leaves0: Vec<u32>,
        top_cells: &[Cell],
        root_stats: SearchStats,
    ) -> (Vec<CellResult>, SearchStats) {
        let cursor = AtomicUsize::new(0);
        let leaves0 = &leaves0;
        let mut per_cell: Vec<Vec<CellResult>> = Vec::new();
        let mut stats = root_stats;
        stats.parallel_workers = workers;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut worker = Worker::new(ctx, k, q, j, SearchStats::default());
                        let mut view = SubgraphView::full(&ctx.local_graph);
                        let leaves = Rc::new(leaves0.clone());
                        let mut results: Vec<(usize, Vec<CellResult>)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(cell) = top_cells.get(i) else { break };
                            let before = worker.out_cells.len();
                            worker.run_top_cell(&mut view, cell.clone(), leaves.clone());
                            results.push((i, worker.out_cells.split_off(before)));
                        }
                        (results, worker.stats)
                    })
                })
                .collect();
            per_cell = vec![Vec::new(); top_cells.len()];
            for handle in handles {
                let (results, wstats) = handle.join().expect("GS worker panicked");
                stats.merge_worker(&wstats);
                for (i, cells) in results {
                    per_cell[i] = cells;
                }
            }
        });
        (per_cell.into_iter().flatten().collect(), stats)
    }
}

impl<'c, 'g> Worker<'c, 'g> {
    fn new(ctx: &'c SearchContext<'g>, k: u32, q: &'c [u32], j: usize, stats: SearchStats) -> Self {
        Worker {
            ctx,
            k,
            q,
            j,
            hs_cache: HashMap::new(),
            deletion_groups: Vec::new(),
            stack: Vec::new(),
            out_cells: Vec::new(),
            stats,
        }
    }

    /// Explores one top-level cell to completion. The view must be in the
    /// untouched (k,t)-core state on entry and is restored to it on return.
    fn run_top_cell(&mut self, view: &mut SubgraphView<'_>, cell: Cell, leaves: Rc<Vec<u32>>) {
        debug_assert!(self.stack.is_empty() && self.deletion_groups.is_empty());
        self.stack.push(Task::Visit {
            cell,
            leaves,
            depth: 1,
        });
        while let Some(task) = self.stack.pop() {
            match task {
                Task::Arrange {
                    cell,
                    settled,
                    depth,
                } => self.arrange_state(view, cell, settled, depth),
                Task::Visit {
                    cell,
                    leaves,
                    depth,
                } => self.visit_cell(view, cell, leaves, depth),
                Task::Retreat { cp } => {
                    self.deletion_groups.pop();
                    view.rollback(cp);
                }
            }
        }
    }

    /// Budgeted [`run_top_cell`](Self::run_top_cell): charges one unit per
    /// popped task. On exhaustion the remaining stack is unwound — pending
    /// `Retreat` rollbacks are applied innermost-first so the shared view
    /// (and the deletion history) return to the untouched (k,t)-core state,
    /// while dropped `Visit`/`Arrange` tasks are only counted. Returns
    /// `(completed, tasks executed, tasks dropped)`.
    fn run_top_cell_budgeted(
        &mut self,
        view: &mut SubgraphView<'_>,
        cell: Cell,
        leaves: Rc<Vec<u32>>,
        ticker: &mut BudgetTicker,
    ) -> (bool, u64, u64) {
        debug_assert!(self.stack.is_empty() && self.deletion_groups.is_empty());
        self.stack.push(Task::Visit {
            cell,
            leaves,
            depth: 1,
        });
        let mut executed = 0u64;
        while let Some(task) = self.stack.pop() {
            if !ticker.charge(1) {
                let mut dropped = 0u64;
                let mut next = Some(task);
                while let Some(t) = next {
                    if let Task::Retreat { cp } = t {
                        self.deletion_groups.pop();
                        view.rollback(cp);
                    } else {
                        dropped += 1;
                    }
                    next = self.stack.pop();
                }
                debug_assert!(self.deletion_groups.is_empty());
                return (false, executed, dropped);
            }
            executed += 1;
            match task {
                Task::Arrange {
                    cell,
                    settled,
                    depth,
                } => self.arrange_state(view, cell, settled, depth),
                Task::Visit {
                    cell,
                    leaves,
                    depth,
                } => self.visit_cell(view, cell, leaves, depth),
                Task::Retreat { cp } => {
                    self.deletion_groups.pop();
                    view.rollback(cp);
                }
            }
        }
        (true, executed, 0)
    }

    /// Track an approximate peak of live search memory (Fig. 11(d)): the DFS
    /// path holds one view plus per-level cells and deletion groups.
    fn account_memory(&mut self, view: &SubgraphView<'_>, cell: &Cell, depth: usize) {
        let live_bytes = self.ctx.gd.memory_bytes()
            + view.alive_mask().len() * 5
            + depth * cell.memory_bytes()
            + self
                .deletion_groups
                .iter()
                .map(|g| g.len() * std::mem::size_of::<u32>())
                .sum::<usize>();
        self.stats.memory_bytes = self.stats.memory_bytes.max(live_bytes);
    }

    /// Computes (or locates) the new hyperplanes among `leaves`; `settled` is
    /// sorted (leaves come out in increasing id order), and pairs of settled
    /// leaves are already separated by the arrangement that produced the
    /// current cell, so their half-spaces need not be re-inserted (the
    /// "directly locate" optimization of Section V-B).
    fn halfspaces(&mut self, leaves: &[u32], settled: &[u32]) -> Vec<HalfSpace> {
        let is_settled = |v: u32| settled.binary_search(&v).is_ok();
        let mut hps: Vec<HalfSpace> = Vec::new();
        for (i, &a) in leaves.iter().enumerate() {
            for &b in leaves.iter().skip(i + 1) {
                if is_settled(a) && is_settled(b) {
                    continue;
                }
                let key = (a.min(b), a.max(b));
                if !self.hs_cache.contains_key(&key) {
                    self.stats.halfspaces_computed += 1;
                    let hs = HalfSpace::score_at_least(
                        self.ctx.attrs.row(key.0 as usize),
                        self.ctx.attrs.row(key.1 as usize),
                    );
                    self.hs_cache.insert(key, hs);
                }
                hps.push(self.hs_cache[&key].clone());
            }
        }
        self.stats.halfspace_insertions += hps.len();
        hps
    }

    /// The `explore` step: arrange the current leaves' half-spaces within
    /// `cell` and queue the resulting sub-cells for visiting (in order).
    fn arrange_state(
        &mut self,
        view: &mut SubgraphView<'_>,
        cell: Cell,
        settled: Rc<Vec<u32>>,
        depth: usize,
    ) {
        self.account_memory(view, &cell, depth);
        let leaves: Rc<Vec<u32>> = Rc::new(
            self.ctx
                .gd
                .leaves_within(view.alive_mask())
                .into_iter()
                .map(|v| v as u32)
                .collect(),
        );
        let hps = self.halfspaces(&leaves, &settled);
        let sub_cells = arrange(&cell, &hps);
        self.stats.partitions_explored += sub_cells.len();
        for sub_cell in sub_cells.into_iter().rev() {
            self.stack.push(Task::Visit {
                cell: sub_cell,
                leaves: leaves.clone(),
                depth,
            });
        }
    }

    /// One sub-cell decision (lines 13–20 of Algorithm 1).
    fn visit_cell(
        &mut self,
        view: &mut SubgraphView<'_>,
        cell: Cell,
        leaves: Rc<Vec<u32>>,
        depth: usize,
    ) {
        let ctx = self.ctx;
        let Some(w) = cell.sample_point() else {
            return;
        };
        // Within the sub-partition the relative order of the leaves is fixed,
        // so the minimum at the sample point is the minimum everywhere in the
        // cell. Exact score ties (e.g. identical attribute vectors, which no
        // half-space can separate) are broken by smallest id — the same rule
        // the fixed-weight peeling oracle applies, so both explorations delete
        // the same vertex.
        let u = leaves
            .iter()
            .copied()
            .min_by(|&a, &b| {
                ctx.score(a, &w)
                    .total_cmp(&ctx.score(b, &w))
                    .then_with(|| a.cmp(&b))
            })
            .expect("a state always has at least one alive leaf");

        // Corollary 1(1): the smallest-score vertex is a query vertex.
        if self.q.contains(&u) {
            self.report_cell(view, cell, w);
            return;
        }
        // Tentative deletion (lines 15-20) behind a checkpoint.
        let cp = view.checkpoint();
        view.delete_cascade_logged(u, self.k);
        let mut ok = self.q.iter().all(|&qv| view.is_alive(qv));
        if ok {
            view.retain_component_of_logged(self.q[0]);
            ok = self.q.iter().all(|&qv| view.is_alive(qv));
        }
        if !ok {
            // Corollary 1(2): deleting u destroys the community, so the
            // parent community is the non-contained MAC of this cell.
            view.rollback(cp);
            self.report_cell(view, cell, w);
            return;
        }
        self.deletion_groups.push(view.log_since(cp).to_vec());
        self.stack.push(Task::Retreat { cp });
        self.stack.push(Task::Arrange {
            cell,
            settled: leaves,
            depth: depth + 1,
        });
    }

    /// Reports one finished cell: the current community plus, for top-j mode,
    /// the supersets obtained by backtracking the deletion history.
    fn report_cell(&mut self, view: &SubgraphView<'_>, cell: Cell, sample_weight: Vec<f64>) {
        let ctx = self.ctx;
        let mut communities: Vec<Community> = Vec::with_capacity(self.j);
        let mut current: Vec<u32> = view.alive_vertices();
        communities.push(ctx.community_from_locals(&current));
        for group in self.deletion_groups.iter().rev() {
            if communities.len() >= self.j {
                break;
            }
            current.extend(group.iter().copied());
            communities.push(ctx.community_from_locals(&current));
        }
        self.out_cells.push(CellResult {
            cell,
            sample_weight,
            communities,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::peel_at_weight;
    use rsn_geom::region::PrefRegion;
    use rsn_graph::graph::Graph;
    use rsn_road::network::{Location, RoadNetwork};

    /// The two-K4 network of the peel tests: {0,1,2,3} and {0,1,4,5} share the
    /// edge (0,1); attribute space splits them cleanly.
    fn network() -> RoadSocialNetwork {
        let social = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (0, 4),
                (0, 5),
                (1, 4),
                (1, 5),
                (4, 5),
            ],
        );
        let road = RoadNetwork::from_edges(2, &[(0, 1, 1.0)]);
        let locations = vec![Location::vertex(0); 6];
        let attrs = vec![
            vec![6.0, 6.0],
            vec![6.0, 6.0],
            vec![9.0, 1.0],
            vec![8.0, 2.0],
            vec![1.0, 9.0],
            vec![2.0, 8.0],
        ];
        RoadSocialNetwork::new(social, road, locations, attrs).unwrap()
    }

    #[test]
    fn gs_nc_partitions_region_by_preference() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0, 1], 3, 10.0, region);
        let gs = GlobalSearch::new(&rsn, &query);
        let result = gs.run_non_contained().unwrap();
        assert!(!result.is_empty());
        // both sides must appear among the distinct non-contained MACs
        let distinct = result.distinct_communities();
        let has_left = distinct.iter().any(|c| c.vertices == vec![0, 1, 2, 3]);
        let has_right = distinct.iter().any(|c| c.vertices == vec![0, 1, 4, 5]);
        assert!(has_left && has_right, "distinct = {distinct:?}");
        assert!(result.stats.kt_core_vertices == 6);
        assert!(result.stats.partitions_explored >= 2);
    }

    #[test]
    fn gs_nc_cells_agree_with_fixed_weight_peeling() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0, 1], 3, 10.0, region);
        let gs = GlobalSearch::new(&rsn, &query);
        let result = gs.run_non_contained().unwrap();
        let ctx = SearchContext::build(&rsn, &query).unwrap().unwrap();
        for cell in &result.cells {
            let oracle = peel_at_weight(&ctx, &cell.sample_weight);
            let expect = ctx.community_from_locals(&oracle.final_vertices);
            assert_eq!(
                cell.communities[0].vertices, expect.vertices,
                "cell with sample {:?} disagrees with the peeling oracle",
                cell.sample_weight
            );
        }
    }

    #[test]
    fn gs_top_j_returns_nested_communities() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0, 1], 3, 10.0, region).with_top_j(2);
        let gs = GlobalSearch::new(&rsn, &query);
        let result = gs.run_top_j().unwrap();
        assert!(!result.is_empty());
        for cell in &result.cells {
            assert!(!cell.communities.is_empty() && cell.communities.len() <= 2);
            for pair in cell.communities.windows(2) {
                assert!(pair[1].contains_all(&pair[0]));
                assert!(pair[1].len() > pair[0].len());
            }
            // every community is a connected k-core containing the query
            for c in &cell.communities {
                assert!(c.contains(0) && c.contains(1));
            }
        }
    }

    #[test]
    fn gs_empty_when_no_kt_core() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        let query = MacQuery::new(vec![0], 5, 10.0, region);
        let gs = GlobalSearch::new(&rsn, &query);
        let result = gs.run_non_contained().unwrap();
        assert!(result.is_empty());
        assert_eq!(result.stats.kt_core_vertices, 0);
    }

    #[test]
    fn gs_single_attribute_degenerates_to_single_cell() {
        // d = 1: the preference domain is 0-dimensional, so the answer is a
        // single cell identical to a fixed-weight peel.
        let social = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3), (1, 3), (0, 3)]);
        let road = RoadNetwork::from_edges(1, &[]);
        let locations = vec![Location::vertex(0); 4];
        let attrs = vec![vec![4.0], vec![3.0], vec![2.0], vec![1.0]];
        let rsn = RoadSocialNetwork::new(social, road, locations, attrs).unwrap();
        let region = PrefRegion::from_ranges(&[]).unwrap();
        let query = MacQuery::new(vec![0], 2, 10.0, region);
        let result = GlobalSearch::new(&rsn, &query).run_non_contained().unwrap();
        assert_eq!(result.num_cells(), 1);
        // vertices 3 then 2 are peeled away (scores 1 and 2), leaving the
        // triangle {0,1,2}.
        assert_eq!(result.cells[0].communities[0].vertices, vec![0, 1, 2]);
    }

    /// Serial and parallel runs must produce identical cell sequences — same
    /// order, same sample weights, same communities.
    fn assert_results_identical(a: &MacSearchResult, b: &MacSearchResult) {
        assert_eq!(a.cells.len(), b.cells.len(), "cell count diverged");
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.sample_weight, cb.sample_weight);
            assert_eq!(
                ca.communities
                    .iter()
                    .map(|c| &c.vertices)
                    .collect::<Vec<_>>(),
                cb.communities
                    .iter()
                    .map(|c| &c.vertices)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn parallel_gs_matches_serial_exactly() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.1, 0.9)]).unwrap();
        for top_j in [false, true] {
            let query = MacQuery::new(vec![0, 1], 3, 10.0, region.clone()).with_top_j(2);
            let serial = GlobalSearch::new(&rsn, &query);
            let serial_result = if top_j {
                serial.run_top_j().unwrap()
            } else {
                serial.run_non_contained().unwrap()
            };
            for workers in [2usize, 4, 0] {
                let par = GlobalSearch::new(&rsn, &query).with_parallelism(workers);
                let par_result = if top_j {
                    par.run_top_j().unwrap()
                } else {
                    par.run_non_contained().unwrap()
                };
                assert_results_identical(&serial_result, &par_result);
                assert_eq!(
                    serial_result.stats.partitions_explored,
                    par_result.stats.partitions_explored
                );
            }
        }
    }

    #[test]
    fn parallel_gs_matches_serial_on_randomized_networks() {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(0x6570);
        let mut threaded_rounds = 0;
        for round in 0..6 {
            let n = rng.random_range(12..30usize);
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.random_range(0.0..1.0) < 0.35 {
                        edges.push((u, v));
                    }
                }
            }
            let social = Graph::from_edges(n, &edges);
            let road = RoadNetwork::from_edges(1, &[]);
            let locations = vec![Location::vertex(0); n];
            let attrs: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..3).map(|_| rng.random_range(0.0..10.0)).collect())
                .collect();
            let rsn = RoadSocialNetwork::new(social, road, locations, attrs).unwrap();
            let region = PrefRegion::from_ranges(&[(0.1, 0.6), (0.15, 0.5)]).unwrap();
            let query = MacQuery::new(vec![0], 3, 10.0, region).with_top_j(2);
            let serial = GlobalSearch::new(&rsn, &query).run_top_j().unwrap();
            let parallel = GlobalSearch::new(&rsn, &query)
                .with_parallelism(3)
                .run_top_j()
                .unwrap();
            assert_results_identical(&serial, &parallel);
            let workers = parallel.stats.parallel_workers;
            // 0 only when the root arrangement yields a single top-level
            // cell (the run is forced serial); otherwise capped at 3.
            assert!(
                workers == 0 || (2..=3).contains(&workers),
                "round {round}: implausible worker count {workers}"
            );
            if workers > 0 {
                threaded_rounds += 1;
            }
        }
        assert!(
            threaded_rounds > 0,
            "no round exercised the threaded exploration path"
        );
    }
}

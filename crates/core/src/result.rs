//! Result types shared by the global and local search algorithms.

use rsn_geom::cell::Cell;
use rsn_graph::graph::VertexId;

/// A community: a set of social users.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Community {
    /// Member user ids, sorted ascending.
    pub vertices: Vec<VertexId>,
}

impl Community {
    /// Creates a community from an unsorted member list.
    pub fn new(mut vertices: Vec<VertexId>) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        Community { vertices }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the community has no members.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Whether the community contains a user.
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.binary_search(&v).is_ok()
    }

    /// Whether this community contains all members of `other`.
    pub fn contains_all(&self, other: &Community) -> bool {
        other.vertices.iter().all(|&v| self.contains(v))
    }
}

/// One partition of the region `R` together with its communities.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The sub-partition of `R` (in H-representation).
    pub cell: Cell,
    /// A representative reduced weight vector inside the cell.
    pub sample_weight: Vec<f64>,
    /// Communities for this cell, best first. For Problem 2 (non-contained
    /// MAC) this has exactly one entry; for Problem 1 it holds the top-j MACs.
    pub communities: Vec<Community>,
}

/// Counters describing the work a search performed (used by the benchmark
/// harness to reproduce Fig. 11 and Fig. 12).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Number of vertices in the maximal (k,t)-core.
    pub kt_core_vertices: usize,
    /// Number of edges in the maximal (k,t)-core.
    pub kt_core_edges: usize,
    /// Number of partitions of `R` materialized during the search.
    pub partitions_explored: usize,
    /// Number of distinct half-spaces computed.
    pub halfspaces_computed: usize,
    /// Number of half-space insertions into arrangements.
    pub halfspace_insertions: usize,
    /// Number of r-dominance tests performed while building `G_d`.
    pub dominance_tests: usize,
    /// Number of candidate communities generated (local search only).
    pub candidates_generated: usize,
    /// Approximate peak memory of the dominance graph + arrangements, bytes.
    pub memory_bytes: usize,
    /// Number of worker threads used by a parallel global search (0 when the
    /// exploration ran serially on the calling thread).
    pub parallel_workers: usize,
    /// Number of in-flight DFS subtrees migrated between workers by the
    /// work-stealing scheduler (0 for serial runs or static distribution).
    pub tasks_stolen: usize,
    /// Elapsed wall-clock time in seconds.
    pub elapsed_seconds: f64,
}

impl SearchStats {
    /// Folds the counters of one parallel worker into this (root) record:
    /// work counters add up, peak memory takes the maximum, and the
    /// query-level fields (core size, dominance tests, elapsed time) keep the
    /// root's values.
    pub fn merge_worker(&mut self, worker: &SearchStats) {
        self.partitions_explored += worker.partitions_explored;
        self.halfspaces_computed += worker.halfspaces_computed;
        self.halfspace_insertions += worker.halfspace_insertions;
        self.candidates_generated += worker.candidates_generated;
        self.tasks_stolen += worker.tasks_stolen;
        self.memory_bytes = self.memory_bytes.max(worker.memory_bytes);
    }
}

/// The answer to a MAC query: a set of cells covering (part of) `R`, each with
/// its communities, plus execution statistics.
#[derive(Debug, Clone)]
pub struct MacSearchResult {
    /// Per-partition results.
    pub cells: Vec<CellResult>,
    /// Execution statistics.
    pub stats: SearchStats,
}

impl MacSearchResult {
    /// All distinct communities across cells (deduplicated, order of first
    /// appearance). For Problem 2 this is the set of non-contained MACs.
    pub fn distinct_communities(&self) -> Vec<&Community> {
        let mut seen: Vec<&Community> = Vec::new();
        for cell in &self.cells {
            for c in &cell.communities {
                if !seen.iter().any(|s| s.vertices == c.vertices) {
                    seen.push(c);
                }
            }
        }
        seen
    }

    /// Number of cells in the answer.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Whether the query produced no community at all (e.g. no (k,t)-core).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Which stage of the query pipeline a budgeted run was in when it stopped
/// (or finished).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPhase {
    /// The Lemma-1 range filter (who is within query distance `t`).
    Filter,
    /// Maximal (k,t)-core extraction (peeling).
    CoreExtraction,
    /// Search-context construction (r-dominance graph build).
    ContextBuild,
    /// Global search over the arrangement of `R`.
    GlobalSearch,
    /// Local search candidate generation and verification.
    LocalSearch,
}

impl QueryPhase {
    /// Short label for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            QueryPhase::Filter => "filter",
            QueryPhase::CoreExtraction => "core-extraction",
            QueryPhase::ContextBuild => "context-build",
            QueryPhase::GlobalSearch => "global-search",
            QueryPhase::LocalSearch => "local-search",
        }
    }
}

/// Progress counters of a budget-limited run: how far the search got before
/// the budget exhausted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryProgress {
    /// The pipeline stage the run stopped in.
    pub phase: QueryPhase,
    /// Work units the search completed (stage-specific: arrangement tasks in
    /// the global search, candidates in the local search).
    pub explored: u64,
    /// Work units known to be left undone when the budget exhausted (a lower
    /// bound: unexplored subtrees may have expanded further).
    pub remaining: u64,
}

impl std::fmt::Display for QueryProgress {
    /// One-line log form: `global-search: 1200 explored, 3 remaining`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} explored, {} remaining",
            self.phase.name(),
            self.explored,
            self.remaining
        )
    }
}

impl QueryProgress {
    /// The [`Display`](std::fmt::Display) form as an owned string, for
    /// callers assembling structured log records.
    pub fn summary(&self) -> String {
        self.to_string()
    }
}

/// A budget-exhausted query answer: the best-so-far communities plus why and
/// where the run stopped.
#[derive(Debug, Clone)]
pub struct PartialResult {
    /// Communities confirmed before exhaustion. Every cell is exact — a
    /// subset of the full run's answer — but cells the search never reached
    /// are missing.
    pub result: MacSearchResult,
    /// Why the budget exhausted.
    pub cause: rsn_road::ExhaustionCause,
    /// How far the run got.
    pub progress: QueryProgress,
}

/// The outcome of a budgeted query: either the exact answer, or the
/// best-so-far answer of a run stopped by its
/// [`QueryBudget`](crate::budget::QueryBudget).
///
/// ```
/// use rsn_core::{MacEngine, MacQuery, QueryBudget, QueryOutcome, RoadSocialNetwork};
/// # fn demo(engine: &MacEngine, query: &MacQuery) -> Result<(), rsn_core::MacError> {
/// let mut session = engine.session();
/// match session.execute_with_budget(query, &QueryBudget::new().with_work_limit(100_000))? {
///     QueryOutcome::Complete(result) => println!("{} cells", result.num_cells()),
///     QueryOutcome::Partial(partial) => println!(
///         "stopped by {} in {}: {} cells so far",
///         partial.cause,
///         partial.progress.phase.name(),
///         partial.result.num_cells()
///     ),
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// The search ran to completion; the result is exact.
    Complete(MacSearchResult),
    /// The budget exhausted first; the result holds every community
    /// confirmed so far.
    Partial(PartialResult),
}

impl QueryOutcome {
    /// The result payload, complete or partial.
    pub fn result(&self) -> &MacSearchResult {
        match self {
            QueryOutcome::Complete(r) => r,
            QueryOutcome::Partial(p) => &p.result,
        }
    }

    /// Consumes the outcome, returning the result payload.
    pub fn into_result(self) -> MacSearchResult {
        match self {
            QueryOutcome::Complete(r) => r,
            QueryOutcome::Partial(p) => p.result,
        }
    }

    /// Whether the budget exhausted before the search finished.
    pub fn is_partial(&self) -> bool {
        matches!(self, QueryOutcome::Partial(_))
    }

    /// Whether the search ran to completion.
    pub fn is_complete(&self) -> bool {
        matches!(self, QueryOutcome::Complete(_))
    }

    /// Progress counters when the outcome is partial.
    pub fn progress(&self) -> Option<&QueryProgress> {
        match self {
            QueryOutcome::Complete(_) => None,
            QueryOutcome::Partial(p) => Some(&p.progress),
        }
    }

    /// The [`Display`](std::fmt::Display) form as an owned string, for
    /// callers assembling structured log records.
    pub fn summary(&self) -> String {
        self.to_string()
    }
}

impl std::fmt::Display for QueryOutcome {
    /// One-line log form a serving loop can emit without reaching into the
    /// result internals:
    /// `complete: 3 cells, 2 communities, 1.24ms` or
    /// `partial (deadline exceeded; global-search: 1200 explored, 3 remaining): 1 cell, 0.50ms`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cells = |r: &MacSearchResult, f: &mut std::fmt::Formatter<'_>| {
            write!(
                f,
                "{} cell{}, {} communit{}, {:.2}ms",
                r.num_cells(),
                if r.num_cells() == 1 { "" } else { "s" },
                r.distinct_communities().len(),
                if r.distinct_communities().len() == 1 {
                    "y"
                } else {
                    "ies"
                },
                r.stats.elapsed_seconds * 1e3
            )
        };
        match self {
            QueryOutcome::Complete(r) => {
                write!(f, "complete: ")?;
                cells(r, f)
            }
            QueryOutcome::Partial(p) => {
                write!(f, "partial ({}; {}): ", p.cause, p.progress)?;
                cells(&p.result, f)
            }
        }
    }
}

/// Internal carrier of one budgeted algorithm stage: the communities found,
/// whether the stage completed, and its work counters.
#[derive(Debug)]
pub(crate) struct BudgetedRun {
    /// Cells confirmed so far (exact, possibly incomplete coverage).
    pub result: MacSearchResult,
    /// `true` when the stage ran to completion.
    pub completed: bool,
    /// Work units completed.
    pub explored: u64,
    /// Work units known undone (0 when `completed`).
    pub remaining: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_geom::region::PrefRegion;

    #[test]
    fn community_basics() {
        let c = Community::new(vec![5, 1, 3, 3]);
        assert_eq!(c.vertices, vec![1, 3, 5]);
        assert_eq!(c.len(), 3);
        assert!(c.contains(3));
        assert!(!c.contains(2));
        let sub = Community::new(vec![1, 5]);
        assert!(c.contains_all(&sub));
        assert!(!sub.contains_all(&c));
        assert!(!c.is_empty());
    }

    #[test]
    fn distinct_communities_deduplicate() {
        let region = PrefRegion::from_ranges(&[(0.1, 0.5)]).unwrap();
        let cell = Cell::from_region(&region);
        let result = MacSearchResult {
            cells: vec![
                CellResult {
                    cell: cell.clone(),
                    sample_weight: vec![0.2],
                    communities: vec![Community::new(vec![1, 2]), Community::new(vec![1, 2, 3])],
                },
                CellResult {
                    cell,
                    sample_weight: vec![0.4],
                    communities: vec![Community::new(vec![2, 1])],
                },
            ],
            stats: SearchStats::default(),
        };
        assert_eq!(result.num_cells(), 2);
        assert_eq!(result.distinct_communities().len(), 2);
        assert!(!result.is_empty());
    }
}

//! Shared search context: the maximal (k,t)-core as a compact local graph,
//! plus the r-dominance graph `G_d` built over it.
//!
//! Both the global search (Algorithm 1) and the local search framework
//! (Algorithm 3) start with the same three steps — range filter, (k,t)-core
//! extraction, `G_d` construction — so they share this context.

use crate::error::MacError;
use crate::ktcore::{maximal_kt_core_budgeted, maximal_kt_core_with, KtOutcome, KtScratch};
use crate::network::RoadSocialNetwork;
use crate::query::MacQuery;
use crate::result::{Community, QueryPhase};
use rsn_dom::attrs::AttrMatrix;
use rsn_dom::dominance::DominanceGraph;
use rsn_geom::weights::score_reduced;
use rsn_graph::graph::{Graph, VertexId};
use rsn_road::budget::BudgetTicker;
use rsn_road::gtree::LeafTargets;
use rsn_road::rangefilter::RangeFilterChoice;

/// Reusable buffers for repeated [`SearchContext`] builds against one
/// network: the (k,t)-core extraction scratch plus the context's own
/// id-translation array. Owned by a
/// [`QuerySession`](crate::session::QuerySession) and threaded through every
/// query it executes, so the network-sized allocations happen once per
/// session instead of once per query. (The core-local structures — induced
/// graph, attribute matrix, dominance graph — are *returned* inside the
/// context and therefore owned per query by construction.)
#[derive(Debug, Default)]
pub struct ContextScratch {
    /// (k,t)-core extraction buffers (filter scratch, masks, id maps).
    pub(crate) kt: KtScratch,
    /// Social-id → core-local-id translation for the context build.
    pub(crate) old_to_new: Vec<u32>,
}

impl ContextScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        ContextScratch::default()
    }
}

/// Outcome of a budget-limited [`SearchContext`] build.
#[derive(Debug)]
pub(crate) enum BuildOutcome<'a> {
    /// The context is ready for the search stages (boxed: the context is an
    /// order of magnitude larger than the other variants).
    Ready(Box<SearchContext<'a>>),
    /// No (k,t)-core exists; the query has an empty answer.
    Empty,
    /// The budget exhausted in the given pipeline phase before the context
    /// was ready.
    Exhausted(QueryPhase),
}

/// The owned parts of a [`SearchContext`] — everything except the `rsn` /
/// `query` borrows. This is what the session-level
/// [`ContextCache`](crate::ctxcache::ContextCache) stores between queries:
/// the expensive-to-build core-local structures (induced (k,t)-core graph,
/// attribute matrix, and above all the `O(core²)`-to-build r-dominance
/// graph) survive while the lifetimes of the borrowing context do not.
#[derive(Debug, Clone)]
pub struct ContextParts {
    core_vertices: Vec<VertexId>,
    local_graph: Graph,
    local_q: Vec<u32>,
    attrs: AttrMatrix,
    gd: DominanceGraph,
}

impl ContextParts {
    /// Approximate heap footprint, for cache accounting/diagnostics.
    pub fn approx_bytes(&self) -> usize {
        self.core_vertices.len() * std::mem::size_of::<VertexId>()
            + self.local_graph.num_edges() * 2 * std::mem::size_of::<u32>()
            + self.local_q.len() * std::mem::size_of::<u32>()
            + self.attrs.memory_bytes()
            + self.gd.memory_bytes()
    }
}

/// Shared state for one MAC query.
#[derive(Debug, Clone)]
pub struct SearchContext<'a> {
    /// The queried network.
    pub rsn: &'a RoadSocialNetwork,
    /// The query.
    pub query: &'a MacQuery,
    /// Members of the maximal (k,t)-core, as social ids (sorted).
    pub core_vertices: Vec<VertexId>,
    /// The (k,t)-core as an induced graph over local ids `0..n'`.
    pub local_graph: Graph,
    /// Query vertices translated to local ids.
    pub local_q: Vec<u32>,
    /// Attribute vectors of the core members, by local id, packed row-major
    /// (`attrs[v]` / `attrs.row(v)` is the d-dimensional vector of `v`).
    pub attrs: AttrMatrix,
    /// The r-dominance graph over local ids.
    pub gd: DominanceGraph,
}

impl<'a> SearchContext<'a> {
    /// Builds the context. Returns `Ok(None)` when no (k,t)-core exists (the
    /// query then has an empty answer).
    ///
    /// One-shot convenience over [`build_with`](Self::build_with): allocates
    /// fresh scratch and uses the query's own [`filter`](MacQuery::filter)
    /// choice (analytic `Auto`).
    pub fn build(
        rsn: &'a RoadSocialNetwork,
        query: &'a MacQuery,
    ) -> Result<Option<Self>, MacError> {
        let mut scratch = ContextScratch::new();
        Self::build_with(rsn, query, query.filter, None, &mut scratch)
    }

    /// Builds the context with an explicit (engine-resolved) range-filter
    /// strategy, optional pre-grouped G-tree user targets, and caller-owned
    /// scratch — the serving path of
    /// [`QuerySession`](crate::session::QuerySession).
    pub fn build_with(
        rsn: &'a RoadSocialNetwork,
        query: &'a MacQuery,
        filter_choice: RangeFilterChoice,
        targets: Option<&LeafTargets>,
        scratch: &mut ContextScratch,
    ) -> Result<Option<Self>, MacError> {
        let Some(core) = maximal_kt_core_with(rsn, query, filter_choice, targets, &mut scratch.kt)?
        else {
            return Ok(None);
        };
        Ok(Some(Self::assemble(rsn, query, core.vertices, scratch)))
    }

    /// Budgeted [`build_with`](Self::build_with): the (k,t)-core extraction
    /// runs through the budgeted filter paths and the r-dominance graph
    /// build is charged after the fact by its measured test count, so an
    /// exhausted budget stops the pipeline between stages.
    pub(crate) fn build_budgeted(
        rsn: &'a RoadSocialNetwork,
        query: &'a MacQuery,
        filter_choice: RangeFilterChoice,
        targets: Option<&LeafTargets>,
        scratch: &mut ContextScratch,
        ticker: &mut BudgetTicker,
    ) -> Result<BuildOutcome<'a>, MacError> {
        let core = match maximal_kt_core_budgeted(
            rsn,
            query,
            filter_choice,
            targets,
            &mut scratch.kt,
            ticker,
        )? {
            KtOutcome::Core(core) => core,
            KtOutcome::Empty => return Ok(BuildOutcome::Empty),
            KtOutcome::Exhausted(phase) => return Ok(BuildOutcome::Exhausted(phase)),
        };
        let ctx = Self::assemble(rsn, query, core.vertices, scratch);
        // The dominance-graph build already happened; charge its measured
        // cost so the budget reflects it before the search stages start.
        if !ticker.charge(ctx.gd.tests_performed() as u64) {
            return Ok(BuildOutcome::Exhausted(QueryPhase::ContextBuild));
        }
        Ok(BuildOutcome::Ready(Box::new(ctx)))
    }

    /// Shared tail of the context builds: induced local graph, id
    /// translations, attribute matrix, and the r-dominance graph.
    fn assemble(
        rsn: &'a RoadSocialNetwork,
        query: &'a MacQuery,
        core_vertices: Vec<VertexId>,
        scratch: &mut ContextScratch,
    ) -> Self {
        let (local_graph, new_to_old) = rsn.social().induced_subgraph(&core_vertices);
        let old_to_new = &mut scratch.old_to_new;
        old_to_new.clear();
        old_to_new.resize(rsn.num_users(), u32::MAX);
        for (new, &old) in new_to_old.iter().enumerate() {
            old_to_new[old as usize] = new as u32;
        }
        let local_q: Vec<u32> = query.q.iter().map(|&v| old_to_new[v as usize]).collect();
        let mut attrs = AttrMatrix::with_capacity(rsn.attribute_dim(), new_to_old.len());
        for &old in &new_to_old {
            attrs.push_row(rsn.attributes(old));
        }
        let local_ids: Vec<u32> = (0..new_to_old.len() as u32).collect();
        let gd = DominanceGraph::build_flat(&local_ids, &attrs, &query.region);
        SearchContext {
            rsn,
            query,
            core_vertices: new_to_old,
            local_graph,
            local_q,
            attrs,
            gd,
        }
    }

    /// Disassembles the context into its owned, network-independent parts so
    /// a [`ContextCache`](crate::ctxcache::ContextCache) can keep them across
    /// queries. The inverse of [`from_parts`](Self::from_parts).
    pub fn into_parts(self) -> ContextParts {
        ContextParts {
            core_vertices: self.core_vertices,
            local_graph: self.local_graph,
            local_q: self.local_q,
            attrs: self.attrs,
            gd: self.gd,
        }
    }

    /// Reassembles a context from cached parts (zero-copy: the parts are
    /// moved, not cloned). The caller owes the cache coherence argument:
    /// `parts` must have been produced by a query with the same
    /// [context signature](crate::query::QuerySignature::context_signature)
    /// on the same engine epoch — the session context cache enforces both.
    pub fn from_parts(
        rsn: &'a RoadSocialNetwork,
        query: &'a MacQuery,
        parts: ContextParts,
    ) -> Self {
        SearchContext {
            rsn,
            query,
            core_vertices: parts.core_vertices,
            local_graph: parts.local_graph,
            local_q: parts.local_q,
            attrs: parts.attrs,
            gd: parts.gd,
        }
    }

    /// Number of vertices in the (k,t)-core.
    pub fn core_size(&self) -> usize {
        self.core_vertices.len()
    }

    /// Number of edges in the (k,t)-core.
    pub fn core_edges(&self) -> usize {
        self.local_graph.num_edges()
    }

    /// Score of a local vertex under a reduced weight vector.
    #[inline]
    pub fn score(&self, local: u32, reduced_w: &[f64]) -> f64 {
        score_reduced(self.attrs.row(local as usize), reduced_w)
    }

    /// Translates a set of local ids back to a [`Community`] of social ids.
    pub fn community_from_locals(&self, locals: &[u32]) -> Community {
        Community::new(
            locals
                .iter()
                .map(|&v| self.core_vertices[v as usize])
                .collect(),
        )
    }

    /// Buffer-reusing [`community_from_locals`](Self::community_from_locals):
    /// rebuilds `out` in place so pooled communities recycle their member
    /// vectors across queries.
    pub fn community_from_locals_into(&self, locals: &[u32], out: &mut Community) {
        out.vertices.clear();
        out.vertices
            .extend(locals.iter().map(|&v| self.core_vertices[v as usize]));
        out.vertices.sort_unstable();
        out.vertices.dedup();
    }

    /// Translates an alive-mask over local ids to a [`Community`].
    pub fn community_from_mask(&self, mask: &[bool]) -> Community {
        Community::new(
            (0..mask.len())
                .filter(|&v| mask[v])
                .map(|v| self.core_vertices[v])
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_geom::region::PrefRegion;
    use rsn_road::network::{Location, RoadNetwork};

    fn simple_network() -> RoadSocialNetwork {
        // K4 on users 0..3 plus pendant user 4
        let social =
            Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]);
        let road = RoadNetwork::from_edges(2, &[(0, 1, 1.0)]);
        let locations = vec![Location::vertex(0); 5];
        let attrs = vec![
            vec![5.0, 1.0],
            vec![4.0, 2.0],
            vec![3.0, 3.0],
            vec![2.0, 4.0],
            vec![1.0, 5.0],
        ];
        RoadSocialNetwork::new(social, road, locations, attrs).unwrap()
    }

    #[test]
    fn context_builds_local_view() {
        let rsn = simple_network();
        let region = PrefRegion::from_ranges(&[(0.3, 0.7)]).unwrap();
        let query = MacQuery::new(vec![0], 3, 10.0, region);
        let ctx = SearchContext::build(&rsn, &query).unwrap().unwrap();
        assert_eq!(ctx.core_size(), 4);
        assert_eq!(ctx.core_edges(), 6);
        assert_eq!(ctx.local_q.len(), 1);
        assert_eq!(ctx.gd.num_vertices(), 4);
        // local scores equal the direct weighted sums
        let s = ctx.score(0, &[0.5]);
        assert!((s - 3.0).abs() < 1e-12);
        let community = ctx.community_from_locals(&[0, 1]);
        assert_eq!(community.vertices.len(), 2);
    }

    #[test]
    fn context_none_without_core() {
        let rsn = simple_network();
        let region = PrefRegion::from_ranges(&[(0.3, 0.7)]).unwrap();
        let query = MacQuery::new(vec![4], 3, 10.0, region);
        assert!(SearchContext::build(&rsn, &query).unwrap().is_none());
    }
}

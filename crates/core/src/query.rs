//! MAC query parameters.

use crate::engine::AlgorithmChoice;
use crate::error::MacError;
use crate::network::RoadSocialNetwork;
use rsn_geom::region::PrefRegion;
use rsn_graph::graph::VertexId;
use rsn_road::rangefilter::RangeFilterChoice;

/// A multi-attributed community search query (Problems 1 and 2).
#[derive(Debug, Clone)]
pub struct MacQuery {
    /// Query users `Q`.
    pub q: Vec<VertexId>,
    /// Coreness threshold `k`.
    pub k: u32,
    /// Query-distance threshold `t`.
    pub t: f64,
    /// Region of interest `R` in the preference domain.
    pub region: PrefRegion,
    /// Number of communities to report per partition (Problem 1); `1`
    /// corresponds to reporting only the top community.
    pub j: usize,
    /// Which strategy answers the Lemma-1 range filter ("which users are
    /// within t") as a set operation. `Auto` resolves through the calibrated
    /// crossover rule — measured per-network constants when executed through
    /// a [`MacEngine`](crate::engine::MacEngine), the analytic fallback
    /// (`rsn_road::rangefilter::resolve_auto`) on the one-shot path: the
    /// bounded Dijkstra sweep at laptop scale, the multi-seed batched G-tree
    /// walk on indexed networks whose estimated radius-t ball dwarfs the
    /// indexed work (`BENCH_PR3.json`); all strategies return identical user
    /// sets.
    pub filter: RangeFilterChoice,
    /// Which search algorithm answers the query. `Auto` (the default) lets
    /// the executing [`QuerySession`](crate::session::QuerySession) resolve
    /// through its engine's calibration: the exact global search up to the
    /// calibrated (k,t)-core size threshold, the local expand-and-verify
    /// framework beyond it.
    pub algorithm: AlgorithmChoice,
}

impl MacQuery {
    /// Creates a query with `j = 1` and automatic filter / algorithm choices.
    pub fn new(q: Vec<VertexId>, k: u32, t: f64, region: PrefRegion) -> Self {
        MacQuery {
            q,
            k,
            t,
            region,
            j: 1,
            filter: RangeFilterChoice::default(),
            algorithm: AlgorithmChoice::default(),
        }
    }

    /// Sets the top-j parameter.
    pub fn with_top_j(mut self, j: usize) -> Self {
        self.j = j;
        self
    }

    /// Selects the Lemma-1 range-filter strategy.
    pub fn with_range_filter(mut self, filter: RangeFilterChoice) -> Self {
        self.filter = filter;
        self
    }

    /// Selects the search algorithm (global / local / calibrated auto).
    pub fn with_algorithm(mut self, algorithm: AlgorithmChoice) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// The coalescing/caching identity of this query: two queries with equal
    /// signatures have **identical answers** on the same engine epoch, so a
    /// serving layer may execute one of them and fan the result out to both
    /// (see `rsn-serve`), and [`QuerySession::execute_batch`](crate::session::QuerySession::execute_batch)
    /// computes each distinct signature once per batch.
    ///
    /// The signature covers everything the *answer* depends on — `Q` (order
    /// included: it is part of the reported local ids), `k`, `t`, the region
    /// `R`, `j`, and the algorithm choice (the local framework is a
    /// heuristic, so `Global` and `Local` answers may legitimately differ).
    /// The range-filter strategy is deliberately excluded: all filter
    /// strategies are property-tested identical, so it only affects speed.
    pub fn signature(&self) -> QuerySignature {
        QuerySignature {
            q: self.q.clone(),
            k: self.k,
            t_bits: self.t.to_bits(),
            region_low_bits: self.region.lows().iter().map(|w| w.to_bits()).collect(),
            region_high_bits: self.region.highs().iter().map(|w| w.to_bits()).collect(),
            j: self.j,
            algorithm: self.algorithm,
        }
    }

    /// Validates the query against a network.
    pub fn validate(&self, rsn: &RoadSocialNetwork) -> Result<(), MacError> {
        if self.q.is_empty() {
            return Err(MacError::EmptyQuery);
        }
        let n = rsn.num_users();
        for &v in &self.q {
            if v as usize >= n {
                return Err(MacError::QueryVertexOutOfRange {
                    vertex: v,
                    num_vertices: n,
                });
            }
        }
        if self.k == 0 {
            return Err(MacError::InvalidCoreness(self.k));
        }
        if !(self.t.is_finite() && self.t >= 0.0) {
            return Err(MacError::InvalidDistanceThreshold(self.t));
        }
        if self.j == 0 {
            return Err(MacError::InvalidTopJ(self.j));
        }
        if rsn.attribute_dim() != self.region.dim() + 1 {
            return Err(MacError::DimensionMismatch {
                region_dim: self.region.dim(),
                attribute_dim: rsn.attribute_dim(),
            });
        }
        Ok(())
    }
}

/// The hashable identity of a [`MacQuery`]'s *answer*: equal signatures ⇒
/// identical results on the same engine epoch. Floating-point parameters are
/// compared by their exact bit patterns (no epsilon): a false split costs one
/// redundant execution, a false merge would corrupt an answer, so the
/// comparison errs on the side of splitting.
///
/// Produced by [`MacQuery::signature`]; consumed by batch deduplication
/// ([`QuerySession::execute_batch`](crate::session::QuerySession::execute_batch)),
/// the session context cache, and `rsn-serve`'s request coalescing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QuerySignature {
    q: Vec<VertexId>,
    k: u32,
    t_bits: u64,
    region_low_bits: Vec<u64>,
    region_high_bits: Vec<u64>,
    j: usize,
    algorithm: AlgorithmChoice,
}

impl MacQuery {
    /// In-place form of
    /// [`signature().context_signature()`](QuerySignature::context_signature):
    /// rebuilds `out` into this query's context signature reusing its heap
    /// buffers, so a warmed caller (the session's cache-key husk) computes
    /// the key without allocating.
    pub(crate) fn write_context_signature(&self, out: &mut QuerySignature) {
        out.q.clear();
        out.q.extend_from_slice(&self.q);
        out.k = self.k;
        out.t_bits = self.t.to_bits();
        out.region_low_bits.clear();
        out.region_low_bits
            .extend(self.region.lows().iter().map(|w| w.to_bits()));
        out.region_high_bits.clear();
        out.region_high_bits
            .extend(self.region.highs().iter().map(|w| w.to_bits()));
        out.j = 1;
        out.algorithm = AlgorithmChoice::Auto;
    }
}

impl QuerySignature {
    /// An empty signature husk for in-place rebuilding via
    /// [`MacQuery::write_context_signature`]; never equal to a real query's
    /// signature (queries validate non-empty `Q`).
    pub(crate) fn empty() -> Self {
        QuerySignature {
            q: Vec::new(),
            k: 0,
            t_bits: 0,
            region_low_bits: Vec::new(),
            region_high_bits: Vec::new(),
            j: 0,
            algorithm: AlgorithmChoice::Auto,
        }
    }

    /// The identity of the query's **search context** (maximal (k,t)-core +
    /// r-dominance graph): everything in the signature except `j` and the
    /// algorithm, which select how the context is searched but not what it
    /// is. Two queries with equal context signatures share one cached
    /// context even when one asks top-j and the other non-contained.
    pub fn context_signature(&self) -> QuerySignature {
        QuerySignature {
            j: 1,
            algorithm: AlgorithmChoice::Auto,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsn_graph::graph::Graph;
    use rsn_road::network::{Location, RoadNetwork};

    fn network() -> RoadSocialNetwork {
        let social = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let road = RoadNetwork::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let locations = vec![
            Location::vertex(0),
            Location::vertex(1),
            Location::vertex(2),
        ];
        let attrs = vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![3.0, 3.0]];
        RoadSocialNetwork::new(social, road, locations, attrs).unwrap()
    }

    #[test]
    fn valid_query_passes() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.2, 0.4)]).unwrap();
        let q = MacQuery::new(vec![0], 2, 5.0, region).with_top_j(3);
        assert!(q.validate(&rsn).is_ok());
        assert_eq!(q.j, 3);
    }

    #[test]
    fn signatures_split_on_answer_relevant_fields_only() {
        let region = PrefRegion::from_ranges(&[(0.2, 0.4)]).unwrap();
        let base = MacQuery::new(vec![0, 1], 2, 5.0, region.clone());
        assert_eq!(base.signature(), base.clone().signature());
        // Every answer-relevant field splits the signature.
        assert_ne!(
            base.signature(),
            MacQuery::new(vec![1, 0], 2, 5.0, region.clone()).signature()
        );
        assert_ne!(
            base.signature(),
            MacQuery::new(vec![0, 1], 3, 5.0, region.clone()).signature()
        );
        assert_ne!(
            base.signature(),
            MacQuery::new(vec![0, 1], 2, 5.5, region.clone()).signature()
        );
        let other_region = PrefRegion::from_ranges(&[(0.2, 0.5)]).unwrap();
        assert_ne!(
            base.signature(),
            MacQuery::new(vec![0, 1], 2, 5.0, other_region).signature()
        );
        assert_ne!(base.signature(), base.clone().with_top_j(2).signature());
        assert_ne!(
            base.signature(),
            base.clone()
                .with_algorithm(AlgorithmChoice::Local)
                .signature()
        );
        // The filter strategy affects speed, never the answer: same signature.
        assert_eq!(
            base.signature(),
            base.clone()
                .with_range_filter(RangeFilterChoice::DijkstraSweep)
                .signature()
        );
        // The context signature additionally merges j and the algorithm.
        assert_eq!(
            base.signature().context_signature(),
            base.clone().with_top_j(3).signature().context_signature()
        );
        assert_eq!(
            base.signature().context_signature(),
            base.clone()
                .with_algorithm(AlgorithmChoice::Global)
                .signature()
                .context_signature()
        );
    }

    #[test]
    fn invalid_queries_rejected() {
        let rsn = network();
        let region = PrefRegion::from_ranges(&[(0.2, 0.4)]).unwrap();
        let base = MacQuery::new(vec![0], 2, 5.0, region.clone());

        let mut q = base.clone();
        q.q = vec![];
        assert_eq!(q.validate(&rsn), Err(MacError::EmptyQuery));

        let mut q = base.clone();
        q.q = vec![9];
        assert!(matches!(
            q.validate(&rsn),
            Err(MacError::QueryVertexOutOfRange { .. })
        ));

        let mut q = base.clone();
        q.k = 0;
        assert_eq!(q.validate(&rsn), Err(MacError::InvalidCoreness(0)));

        let mut q = base.clone();
        q.t = f64::NAN;
        assert!(matches!(
            q.validate(&rsn),
            Err(MacError::InvalidDistanceThreshold(_))
        ));

        let mut q = base.clone();
        q.j = 0;
        assert_eq!(q.validate(&rsn), Err(MacError::InvalidTopJ(0)));

        // wrong dimensionality: 2-dim region for 2-dim attributes (needs 1)
        let bad_region = PrefRegion::from_ranges(&[(0.1, 0.2), (0.1, 0.2)]).unwrap();
        let q = MacQuery::new(vec![0], 2, 5.0, bad_region);
        assert!(matches!(
            q.validate(&rsn),
            Err(MacError::DimensionMismatch { .. })
        ));
    }
}

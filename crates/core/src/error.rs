//! Error type for MAC queries.

use rsn_geom::GeomError;
use rsn_graph::GraphError;
use rsn_road::{ExhaustionCause, RoadError};

/// Which entry of a rejected [`NetworkDelta`](crate::engine::NetworkDelta)
/// caused the rejection — carried by [`MacError::DeltaRejected`] so the
/// `Display` message names the offending edge or user alongside its batch
/// index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaEntry {
    /// Entry `edge_updates[index]`, reweighting the segment `u`–`v`.
    EdgeUpdate {
        /// Edge endpoint.
        u: u32,
        /// Edge endpoint.
        v: u32,
    },
    /// Entry `user_moves[index]`, relocating `user`.
    UserMove {
        /// Social vertex id of the user being moved.
        user: u32,
    },
}

/// Errors raised when validating or executing a MAC query.
#[derive(Debug, Clone, PartialEq)]
pub enum MacError {
    /// The query vertex set is empty.
    EmptyQuery,
    /// A query vertex does not exist in the social network.
    QueryVertexOutOfRange {
        /// Offending social vertex id.
        vertex: u32,
        /// Number of social vertices.
        num_vertices: usize,
    },
    /// The coreness threshold must be at least 1.
    InvalidCoreness(u32),
    /// The query-distance threshold must be non-negative and finite.
    InvalidDistanceThreshold(f64),
    /// The number of requested top communities must be at least 1.
    InvalidTopJ(usize),
    /// The region dimensionality does not match the attribute dimensionality.
    DimensionMismatch {
        /// d − 1 implied by the region.
        region_dim: usize,
        /// d of the attribute vectors.
        attribute_dim: usize,
    },
    /// The network was constructed inconsistently.
    InconsistentNetwork(String),
    /// An error bubbled up from the graph substrate.
    Graph(GraphError),
    /// An error bubbled up from the road substrate.
    Road(RoadError),
    /// An error bubbled up from the preference-domain geometry.
    Geom(GeomError),
    /// A strict-mode query exhausted its [`QueryBudget`](crate::budget::QueryBudget)
    /// before completing. The graceful-degradation paths return
    /// [`QueryOutcome::Partial`](crate::result::QueryOutcome::Partial)
    /// instead of this error.
    BudgetExhausted(ExhaustionCause),
    /// Query execution panicked and the panic was contained by the session
    /// guard; the session scratch was rebuilt and the engine stays
    /// serviceable. Carries the panic payload's message when one exists.
    ExecutionPanicked(String),
    /// A [`NetworkDelta`](crate::engine::NetworkDelta) batch was rejected:
    /// names the offending entry (edge or user plus its index within the
    /// batch) and the underlying cause. The served epoch is unchanged.
    DeltaRejected {
        /// Index of the entry within its batch vector.
        index: usize,
        /// Which entry was rejected.
        entry: DeltaEntry,
        /// The underlying validation error.
        cause: Box<MacError>,
    },
    /// An edge reweight would strand an on-edge user: the user's offset
    /// exceeds the edge's new length.
    StrandedOnEdgeUser {
        /// Social vertex id of the stranded user.
        user: u32,
        /// The user's current offset along the edge.
        offset: f64,
        /// The edge length the update would impose.
        new_length: f64,
    },
}

impl std::fmt::Display for MacError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MacError::EmptyQuery => write!(f, "query vertex set must not be empty"),
            MacError::QueryVertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "query vertex {vertex} out of range for social network with {num_vertices} users"
            ),
            MacError::InvalidCoreness(k) => write!(f, "coreness threshold k = {k} must be >= 1"),
            MacError::InvalidDistanceThreshold(t) => {
                write!(f, "query-distance threshold t = {t} must be finite and >= 0")
            }
            MacError::InvalidTopJ(j) => write!(f, "top-j parameter j = {j} must be >= 1"),
            MacError::DimensionMismatch {
                region_dim,
                attribute_dim,
            } => write!(
                f,
                "region has {region_dim} reduced dimensions but attributes have {attribute_dim} dimensions"
            ),
            MacError::InconsistentNetwork(msg) => write!(f, "inconsistent road-social network: {msg}"),
            MacError::Graph(e) => write!(f, "graph error: {e}"),
            MacError::Road(e) => write!(f, "road network error: {e}"),
            MacError::Geom(e) => write!(f, "preference geometry error: {e}"),
            MacError::BudgetExhausted(cause) => {
                write!(f, "query budget exhausted: {cause}")
            }
            MacError::ExecutionPanicked(msg) => {
                write!(f, "query execution panicked (contained): {msg}")
            }
            MacError::DeltaRejected {
                index,
                entry,
                cause,
            } => match entry {
                DeltaEntry::EdgeUpdate { u, v } => write!(
                    f,
                    "delta rejected: edge_updates[{index}] (segment {u}-{v}): {cause}"
                ),
                DeltaEntry::UserMove { user } => write!(
                    f,
                    "delta rejected: user_moves[{index}] (user {user}): {cause}"
                ),
            },
            MacError::StrandedOnEdgeUser {
                user,
                offset,
                new_length,
            } => write!(
                f,
                "on-edge user {user} at offset {offset} would be stranded: edge shrinks to {new_length}"
            ),
        }
    }
}

impl std::error::Error for MacError {}

impl From<GraphError> for MacError {
    fn from(e: GraphError) -> Self {
        MacError::Graph(e)
    }
}

impl From<RoadError> for MacError {
    fn from(e: RoadError) -> Self {
        MacError::Road(e)
    }
}

impl From<GeomError> for MacError {
    fn from(e: GeomError) -> Self {
        MacError::Geom(e)
    }
}

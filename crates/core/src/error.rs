//! Error type for MAC queries.

use rsn_geom::GeomError;
use rsn_graph::GraphError;
use rsn_road::RoadError;

/// Errors raised when validating or executing a MAC query.
#[derive(Debug, Clone, PartialEq)]
pub enum MacError {
    /// The query vertex set is empty.
    EmptyQuery,
    /// A query vertex does not exist in the social network.
    QueryVertexOutOfRange {
        /// Offending social vertex id.
        vertex: u32,
        /// Number of social vertices.
        num_vertices: usize,
    },
    /// The coreness threshold must be at least 1.
    InvalidCoreness(u32),
    /// The query-distance threshold must be non-negative and finite.
    InvalidDistanceThreshold(f64),
    /// The number of requested top communities must be at least 1.
    InvalidTopJ(usize),
    /// The region dimensionality does not match the attribute dimensionality.
    DimensionMismatch {
        /// d − 1 implied by the region.
        region_dim: usize,
        /// d of the attribute vectors.
        attribute_dim: usize,
    },
    /// The network was constructed inconsistently.
    InconsistentNetwork(String),
    /// An error bubbled up from the graph substrate.
    Graph(GraphError),
    /// An error bubbled up from the road substrate.
    Road(RoadError),
    /// An error bubbled up from the preference-domain geometry.
    Geom(GeomError),
}

impl std::fmt::Display for MacError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MacError::EmptyQuery => write!(f, "query vertex set must not be empty"),
            MacError::QueryVertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "query vertex {vertex} out of range for social network with {num_vertices} users"
            ),
            MacError::InvalidCoreness(k) => write!(f, "coreness threshold k = {k} must be >= 1"),
            MacError::InvalidDistanceThreshold(t) => {
                write!(f, "query-distance threshold t = {t} must be finite and >= 0")
            }
            MacError::InvalidTopJ(j) => write!(f, "top-j parameter j = {j} must be >= 1"),
            MacError::DimensionMismatch {
                region_dim,
                attribute_dim,
            } => write!(
                f,
                "region has {region_dim} reduced dimensions but attributes have {attribute_dim} dimensions"
            ),
            MacError::InconsistentNetwork(msg) => write!(f, "inconsistent road-social network: {msg}"),
            MacError::Graph(e) => write!(f, "graph error: {e}"),
            MacError::Road(e) => write!(f, "road network error: {e}"),
            MacError::Geom(e) => write!(f, "preference geometry error: {e}"),
        }
    }
}

impl std::error::Error for MacError {}

impl From<GraphError> for MacError {
    fn from(e: GraphError) -> Self {
        MacError::Graph(e)
    }
}

impl From<RoadError> for MacError {
    fn from(e: RoadError) -> Self {
        MacError::Road(e)
    }
}

impl From<GeomError> for MacError {
    fn from(e: GeomError) -> Self {
        MacError::Geom(e)
    }
}

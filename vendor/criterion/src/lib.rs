//! Vendored stand-in for `criterion` with the API subset the workspace's
//! benches use: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `sample_size`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! It is a real (if simple) harness: each `Bencher::iter` call runs one
//! warm-up pass and then `sample_size` timed samples, reporting min / mean /
//! max per-iteration wall-clock to stdout. No statistics beyond that — the
//! build environment cannot fetch the real criterion, and the workspace's
//! recorded perf numbers come from the dedicated harness binaries instead.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Default number of timed samples per benchmark.
pub const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into(), self.sample_size, f);
        self
    }
}

/// A named group sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (marker for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F>(group: &str, id: &BenchmarkId, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match bencher.summary() {
        Some((min, mean, max)) => println!(
            "bench {label}: min {:?}  mean {:?}  max {:?}  ({} samples)",
            min,
            mean,
            max,
            bencher.samples.len()
        ),
        None => println!("bench {label}: no samples recorded"),
    }
}

/// Identifier of one benchmark (name plus optional parameter).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-benchmark timing loop.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times the closure: one warm-up run, then `sample_size` timed samples.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn summary(&self) -> Option<(Duration, Duration, Duration)> {
        let min = self.samples.iter().min()?;
        let max = self.samples.iter().max()?;
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        Some((*min, mean, *max))
    }
}

/// Opaque value barrier, re-exported for convenience.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` over group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Vendored stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as forward
//! declarations of serializability — nothing actually serializes through
//! serde yet (the benchmark harness writes its JSON by hand). Since the build
//! environment cannot reach crates.io, this crate provides the two trait
//! names as markers plus no-op derives, so the annotations compile and a
//! future PR can swap in the real serde without touching call sites.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types declared serializable.
pub trait Serialize {}

/// Marker for types declared deserializable.
pub trait Deserialize {}

//! Vendored stand-in for `proptest` covering the API subset the workspace's
//! property tests use: the `proptest!` macro with a `#![proptest_config]`
//! header, range strategies over integers and floats, and
//! `prop_assert!` / `prop_assert_eq!`.
//!
//! Instead of random sampling with shrinking, each argument range is swept
//! with an evenly spaced, deterministic grid of `cases` values, so failures
//! reproduce exactly and CI runs are stable. That trades shrinking power for
//! determinism — a reasonable deal for the cross-crate consistency suites
//! this workspace runs.

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of deterministic cases per test.
    pub cases: u32,
    /// Accepted for API compatibility; unused by the deterministic sweep.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 16,
            max_shrink_iters: 0,
        }
    }
}

/// A value source for one macro argument (`x in strategy`).
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Returns the value for deterministic case `case` of `cases`.
    fn pick(&self, case: u64, cases: u64) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, case: u64, cases: u64) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (span * case as u128 / cases.max(1) as u128).min(span - 1);
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, case: u64, cases: u64) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let frac = (case as $t + 0.5) / cases.max(1) as $t;
                self.start + frac * (self.end - self.start)
            }
        }
    )*};
}

float_strategy!(f32, f64);

/// Assertion inside a property (maps to `assert!` in the deterministic sweep).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Equality assertion inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Declares property tests swept over deterministic value grids.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let cases = config.cases.max(1) as u64;
                for case in 0..cases {
                    $( let $arg = $crate::Strategy::pick(&($strategy), case, cases); )*
                    $body
                }
            }
        )*
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn sweeps_cover_the_range(x in 0u64..100, f in 0.5f64..1.5) {
            prop_assert!(x < 100);
            prop_assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn int_grid_is_monotonic_and_in_range() {
        let values: Vec<u64> = (0..8).map(|c| Strategy::pick(&(10u64..50), c, 8)).collect();
        assert!(values.windows(2).all(|w| w[0] <= w[1]));
        assert!(values.iter().all(|&v| (10..50).contains(&v)));
        prop_assert_eq!(values[0], 10);
    }
}

//! No-op `Serialize` / `Deserialize` derives for the vendored serde stub.
//!
//! Emits an empty marker-trait impl for the derived type. Written against the
//! bare `proc_macro` API (no `syn`/`quote` — the build environment has no
//! registry access), so it supports exactly what the workspace derives on:
//! non-generic structs and enums.

use proc_macro::{TokenStream, TokenTree};

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(kw) = &tt {
            let kw = kw.to_string();
            if kw == "struct" || kw == "enum" {
                for tt in tokens.by_ref() {
                    if let TokenTree::Ident(name) = tt {
                        return format!("impl {trait_path} for {name} {{}}")
                            .parse()
                            .expect("generated impl parses");
                    }
                }
            }
        }
    }
    panic!("serde stub derive supports only plain structs and enums");
}

/// Derives the `Serialize` marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

/// Derives the `Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize")
}

//! Vendored stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the subset of `rand` it actually calls: `StdRng::seed_from_u64`,
//! `Rng::random_range` over integer and float ranges, `Rng::random`, and
//! slice `shuffle`. The generator is xoshiro256++ seeded via SplitMix64, so
//! every dataset and test input is deterministic across runs and platforms.

pub mod rngs;
pub mod seq;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value of a type with a standard uniform distribution.
    fn random<T>(&mut self) -> T
    where
        T: Standard,
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable with a standard uniform distribution.
pub trait Standard: Sized {
    /// Samples one value.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Element types uniformly samplable from a range.
///
/// Mirroring upstream `rand`, the blanket `SampleRange` impls below tie the
/// range's element type to the sampled type with a single type parameter, so
/// float-literal ranges (`-0.5..0.5`) infer cleanly from the use site.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples from the half-open range `[start, end)`.
    fn sample_half_open<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Samples from the closed range `[start, end]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample from empty range");
        T::sample_inclusive(rng, start, end)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self {
                let span = (end as i128 - start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + off) as $t
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self {
                let span = (end as i128 - start as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self {
                start + (unit_f64(rng.next_u64()) as $t) * (end - start)
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, start: Self, end: Self) -> Self {
                Self::sample_half_open(rng, start, end)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u32 = a.random_range(3..17);
            let y: u32 = b.random_range(3..17);
            assert_eq!(x, y);
            assert!((3..17).contains(&x));
            let f = a.random_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
            b.random_range(-2.0..5.0);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle should move at least one element");
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}

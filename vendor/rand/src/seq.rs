//! Sequence helpers (`shuffle`).

use crate::RngCore;

/// Slice extension trait, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        let n = self.len();
        for i in (1..n).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

//! # road-social-mac
//!
//! Umbrella crate for the reproduction of *"Multi-attributed Community Search
//! in Road-social Networks"* (ICDE 2021).
//!
//! This crate simply re-exports the workspace members under stable names so
//! that examples and downstream users can depend on a single crate:
//!
//! * [`graph`] — social-graph substrate (k-core, k-truss, cascading deletion).
//! * [`road`] — road-network substrate (Dijkstra, G-tree, range queries).
//! * [`geom`] — preference-domain geometry (half-spaces, cells, partition tree).
//! * [`dom`] — attribute R-tree and the r-dominance graph `G_d`.
//! * [`core`] — the MAC model and the global/local search algorithms.
//! * [`serve`] — threaded serving front-end (request queue, coalescing,
//!   per-worker context caches).
//! * [`baselines`] — Influ/Influ+/Sky/Sky+/ATC-style comparison algorithms.
//! * [`datagen`] — synthetic road-social network and attribute generators.
//!
//! ## Quick start
//!
//! MAC search is an online query service over a fixed network, and the API is
//! shaped accordingly: build a [`core::MacEngine`] **once** per network (it
//! owns the network behind an `Arc`, pre-groups the G-tree user targets, and
//! runs the measured `Auto` calibration probe), open one
//! [`core::QuerySession`] per serving thread, and execute many queries
//! through it.
//!
//! ```
//! use road_social_mac::prelude::*;
//!
//! // Build the paper's running example (Fig. 1 / Fig. 2) and prepare it
//! // for serving — calibration runs here, once.
//! let rsn = road_social_mac::datagen::paper_example::paper_example_network();
//! let engine = MacEngine::build(rsn);
//! let mut session = engine.session(); // one per serving thread
//!
//! let region = PrefRegion::from_ranges(&[(0.1, 0.5), (0.2, 0.4)]).unwrap();
//! let query = MacQuery::new(vec![1], 2, 9.0, region).with_top_j(2);
//! let result = session.execute(&query).unwrap(); // many times
//! assert!(!result.cells.is_empty());
//! ```
//!
//! The one-shot wrappers (`GlobalSearch::new(..)` / `LocalSearch::new(..)`)
//! remain for scripts and tests; a session resolves
//! `AlgorithmChoice::{Global, Local, Auto}` between the same algorithms
//! through its engine's calibration, with all network-sized scratch reused
//! across queries.
//!
//! *How* queries execute — parallel worker count, work stealing, algorithm
//! and filter defaults, the default budget — is one
//! [`core::ExecutionPolicy`], set at [`core::MacEngine::build_with_policy`],
//! overridable per session ([`core::QuerySession::with_policy`]), with
//! explicit per-query choices always winning. Parallel execution is
//! output-identical to serial at any worker count.

pub use rsn_baselines as baselines;
pub use rsn_core as core;
pub use rsn_datagen as datagen;
pub use rsn_dom as dom;
pub use rsn_geom as geom;
pub use rsn_graph as graph;
pub use rsn_road as road;
pub use rsn_serve as serve;

/// Convenience prelude re-exporting the most commonly used types.
pub mod prelude {
    pub use rsn_core::{
        ktcore::maximal_kt_core, query::MacQuery, result::MacSearchResult, AlgorithmChoice,
        ExecutionPolicy, GlobalSearch, LocalSearch, MacEngine, NetworkDelta, QueryBudget,
        QueryOutcome, QuerySession, RoadSocialNetwork,
    };
    pub use rsn_datagen::presets;
    pub use rsn_dom::dominance::DominanceGraph;
    pub use rsn_geom::{region::PrefRegion, weights::WeightVector};
    pub use rsn_graph::graph::Graph;
    pub use rsn_road::network::RoadNetwork;
    pub use rsn_serve::{MacServer, ServeConfig};
}

//! The Aminer-style scenario from the introduction: find collaborator groups
//! around query researchers that trade off h-index, publication count,
//! activeness and diverseness, comparing the MAC answer with the skyline
//! community and influential community baselines (cf. Fig. 15).
//!
//! ```text
//! cargo run --release --example collaboration_network
//! ```

use road_social_mac::baselines::influ::Influ;
use road_social_mac::baselines::sky::skyline_communities;
use road_social_mac::core::{MacEngine, MacQuery, SearchContext};
use road_social_mac::datagen::presets::{build_preset_scaled, PresetName, PresetScale};
use road_social_mac::geom::PrefRegion;

fn main() {
    let dataset = build_preset_scaled(
        PresetName::AminerNa,
        PresetScale {
            social: 0.3,
            road: 0.3,
        },
        0,
    );
    // Prepare the collaboration network once; the engine is what a service
    // would keep warm between author queries.
    let engine = MacEngine::build(dataset.rsn.clone());
    let mut session = engine.session();
    let epoch = engine.epoch();
    let rsn = epoch.network();

    // Four senior researchers (co-located, high coreness) as query authors;
    // the user mostly cares about activeness (attribute 3) but cannot commit
    // to exact weights for h-index / #publications / diverseness.
    let authors = dataset.query_vertices(4);
    let region =
        PrefRegion::from_ranges(&[(0.1, 0.3), (0.3, 0.5), (0.05, 0.1)]).expect("valid region");
    let query = MacQuery::new(authors.clone(), 5, dataset.default_t, region).with_top_j(2);

    println!("Query researchers: {:?} (k = 5)", authors);
    let result = session.execute_top_j(&query).expect("valid query");
    for (i, cell) in result.cells.iter().enumerate().take(3) {
        println!("preference partition {i}:");
        for (rank, c) in cell.communities.iter().enumerate() {
            println!("  top-{} collaborator group: {} members", rank + 1, c.len());
        }
    }

    // Baselines for contrast (cf. Fig. 15 e-g): the skyline community ignores
    // user preferences, the influential community collapses everything to one
    // score.
    if let Some(ctx) = SearchContext::build(rsn, &query).expect("valid query") {
        let sky = skyline_communities(&ctx.local_graph, &ctx.attrs, 5);
        println!(
            "SkyC finds {} skyline communities (query-agnostic)",
            sky.len()
        );
        let influ = Influ::new(&ctx.local_graph, &ctx.attrs);
        let top = influ.top_r(5, 1, query.region.pivot().reduced());
        if let Some(c) = top.first() {
            println!(
                "InfC with the pivot weights returns one community of {} members",
                c.vertices.len()
            );
        }
    }
}

//! Serving front-end: run the paper's running example (Fig. 1/2) behind a
//! threaded [`MacServer`] — a bounded request queue feeding worker threads
//! that each own a pinned, context-cached [`QuerySession`] — while identical
//! in-flight requests coalesce into one execution and a background thread
//! applies live road-network updates.
//!
//! ```text
//! cargo run --release --example serving_frontend
//! ```

use road_social_mac::core::{MacQuery, NetworkDelta, QueryBudget};
use road_social_mac::datagen::paper_example::{paper_example_network, paper_region};
use road_social_mac::prelude::*;
use std::time::Duration;

fn main() {
    // One engine per network; the server clones the Arc-shared handle into
    // every worker.
    let engine = MacEngine::build(paper_example_network());

    let server = MacServer::start(
        engine.clone(),
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            coalescing: true,
            context_cache_capacity: 16,
            ..ServeConfig::default()
        },
    );

    // Example 2 of the paper: Q = {v2, v3, v6}, k = 3, t = 9, top-2 MACs.
    let query = MacQuery::new(vec![1, 2, 5], 3, 9.0, paper_region()).with_top_j(2);

    // A burst of identical requests: the first to reach a worker executes,
    // the rest join its in-flight cell and share the answer.
    let handles: Vec<_> = (0..8)
        .map(|_| server.submit(query.clone()).expect("server accepts"))
        .collect();
    for (i, handle) in handles.iter().enumerate() {
        let response = handle.wait();
        let outcome = response.outcome.as_ref().expect("query serves");
        println!(
            "response {i}: {} in {:?} (epoch {}, worker {:?})",
            outcome.summary(),
            response.latency,
            response.epoch,
            response.worker,
        );
    }

    // A deadline measured from *submission*: if the request burns its budget
    // in the queue, the worker degrades it to a valid partial prefix instead
    // of erroring.
    let tight = QueryBudget::new().with_deadline(Duration::from_micros(50));
    let response = server
        .submit_with_budget(query.clone(), tight)
        .expect("server accepts")
        .wait();
    println!(
        "tight deadline: {}",
        response
            .outcome
            .as_ref()
            .expect("degrades, never errors")
            .summary()
    );

    // Live update mid-serving: the epoch swap invalidates every worker's
    // context cache, so the next responses answer on the new network.
    engine
        .apply_updates(&NetworkDelta::new().reweight_edge(0, 1, 3.0))
        .expect("delta applies");
    let response = server.submit(query).expect("server accepts").wait();
    println!(
        "after update: {} (epoch {})",
        response.outcome.as_ref().expect("query serves").summary(),
        response.epoch,
    );

    let stats = server.shutdown();
    println!("server: {stats}");
}

//! Cohesive group discovery in an LBSN (Section I): given confirmed cases,
//! find spatially close, socially cohesive groups ranked by contact-risk
//! attributes (interaction similarity and influence), using the local search
//! so results stream out quickly.
//!
//! ```text
//! cargo run --release --example contact_tracing
//! ```

use road_social_mac::core::{
    AlgorithmChoice, ExecutionPolicy, MacEngine, MacQuery, RoadSocialNetwork,
};
use road_social_mac::datagen::attrs::{generate_attrs, AttrDistribution};
use road_social_mac::datagen::locations::{assign_locations, LocationConfig};
use road_social_mac::datagen::road::{generate_road, RoadConfig};
use road_social_mac::datagen::social::{generate_social, PlantedGroup, SocialConfig};
use road_social_mac::geom::PrefRegion;

fn main() {
    // A city district: 2,000 residents, a couple of tightly connected venues
    // (the planted groups), and a road network they move on.
    let social = generate_social(&SocialConfig {
        n: 2_000,
        attach_m: 3,
        planted: vec![
            PlantedGroup {
                size: 40,
                degree: 12,
            },
            PlantedGroup {
                size: 25,
                degree: 8,
            },
        ],
        seed: 7,
    });
    let road = generate_road(&RoadConfig::with_size(1_600, 7));
    // two risk attributes per resident: Jaccard similarity of hangouts with
    // the confirmed cases, and social influence (#neighbours, normalized)
    let attrs = generate_attrs(2_000, 2, AttrDistribution::Correlated, 1.0, 7);
    let locations = assign_locations(&road, 2_000, &social.groups, &LocationConfig::default());
    let rsn = RoadSocialNetwork::new(social.graph, road, locations, attrs).unwrap();

    // The health authority serves many tracing queries against the same
    // district, so the network is prepared once and queries stream through a
    // reused session.
    let engine = MacEngine::build_with_policy(rsn, ExecutionPolicy::new().with_max_candidates(64));
    let mut session = engine.session();

    // Two confirmed cases from the first venue; possible contacts must be
    // within road distance 20 and form a 4-core with them. The investigator
    // cannot pin exact attribute weights, only a rough region. The local
    // framework streams results out quickly.
    let cases = vec![social.groups[0][0], social.groups[0][5]];
    let region = PrefRegion::from_ranges(&[(0.3, 0.7)]).unwrap();
    let query =
        MacQuery::new(cases.clone(), 4, 20.0, region).with_algorithm(AlgorithmChoice::Local);

    let result = session.execute_non_contained(&query).expect("valid query");

    println!("Confirmed cases: {:?}", cases);
    if result.is_empty() {
        println!("no cohesive contact group found within distance 20");
        return;
    }
    println!(
        "{} candidate contact group(s) found in {:.4}s ((k,t)-core of {} residents):",
        result.distinct_communities().len(),
        result.stats.elapsed_seconds,
        result.stats.kt_core_vertices
    );
    for c in result.distinct_communities() {
        println!("  group of {} residents: {:?}", c.len(), c.vertices);
    }
}

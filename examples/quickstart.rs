//! Quickstart: serve MAC queries on the paper's running example (Fig. 1/2)
//! through the prepared-engine API — build a [`MacEngine`] once, open a
//! [`QuerySession`], execute many queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use road_social_mac::core::{AlgorithmChoice, MacEngine, MacQuery};
use road_social_mac::datagen::paper_example::{paper_example_network, paper_region};

fn main() {
    // The 15-user road-social network of Fig. 1 with the attributes of
    // Fig. 2(a), prepared once: the engine owns the network, and (on indexed
    // networks) measures its Auto calibration at build time.
    let engine = MacEngine::build(paper_example_network());
    let mut session = engine.session();

    // Example 2 of the paper: Q = {v2, v3, v6}, k = 3, t = 9,
    // R = [0.1, 0.5] x [0.2, 0.4], top-2 MACs.
    let query = MacQuery::new(vec![1, 2, 5], 3, 9.0, paper_region()).with_top_j(2);

    let global = session.execute_top_j(&query).expect("valid query");
    println!(
        "GS-T: {} partition(s) of R, {} distinct communities, (k,t)-core size {}",
        global.num_cells(),
        global.distinct_communities().len(),
        global.stats.kt_core_vertices
    );
    for (i, cell) in global.cells.iter().enumerate() {
        let users: Vec<String> = cell.communities[0]
            .vertices
            .iter()
            .map(|v| format!("v{}", v + 1))
            .collect();
        println!(
            "  partition {i}: sample weights {:?} -> top-1 MAC {{{}}}",
            cell.sample_weight,
            users.join(", ")
        );
    }

    // The same session serves the local framework: just ask for it.
    let local_query = query.with_algorithm(AlgorithmChoice::Local);
    let local = session
        .execute_non_contained(&local_query)
        .expect("valid query");
    println!(
        "LS-NC: {} non-contained MAC(s) found in {:.4}s (global took {:.4}s; {} queries served)",
        local.distinct_communities().len(),
        local.stats.elapsed_seconds,
        global.stats.elapsed_seconds,
        session.queries_executed(),
    );
}

//! Quickstart: run a MAC query on the paper's running example (Fig. 1/2).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use road_social_mac::core::{GlobalSearch, LocalSearch, MacQuery};
use road_social_mac::datagen::paper_example::{paper_example_network, paper_region};

fn main() {
    // The 15-user road-social network of Fig. 1 with the attributes of Fig. 2(a).
    let rsn = paper_example_network();

    // Example 2 of the paper: Q = {v2, v3, v6}, k = 3, t = 9,
    // R = [0.1, 0.5] x [0.2, 0.4], top-2 MACs.
    let query = MacQuery::new(vec![1, 2, 5], 3, 9.0, paper_region()).with_top_j(2);

    let global = GlobalSearch::new(&rsn, &query)
        .run_top_j()
        .expect("valid query");
    println!(
        "GS-T: {} partition(s) of R, {} distinct communities, (k,t)-core size {}",
        global.num_cells(),
        global.distinct_communities().len(),
        global.stats.kt_core_vertices
    );
    for (i, cell) in global.cells.iter().enumerate() {
        let users: Vec<String> = cell.communities[0]
            .vertices
            .iter()
            .map(|v| format!("v{}", v + 1))
            .collect();
        println!(
            "  partition {i}: sample weights {:?} -> top-1 MAC {{{}}}",
            cell.sample_weight,
            users.join(", ")
        );
    }

    let local = LocalSearch::new(&rsn, &query)
        .run_non_contained()
        .expect("valid query");
    println!(
        "LS-NC: {} non-contained MAC(s) found in {:.4}s (global took {:.4}s)",
        local.distinct_communities().len(),
        local.stats.elapsed_seconds,
        global.stats.elapsed_seconds
    );
}

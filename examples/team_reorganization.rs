//! Personalized optimum community search (Section I): a coach reorganizes a
//! basketball team around certain players, weighting points / rebounds /
//! assists according to an imprecise preference region.
//!
//! ```text
//! cargo run --release --example team_reorganization
//! ```

use road_social_mac::core::{MacEngine, MacQuery, RoadSocialNetwork};
use road_social_mac::datagen::attrs::{generate_attrs, AttrDistribution};
use road_social_mac::datagen::locations::{assign_locations, LocationConfig};
use road_social_mac::datagen::road::{generate_road, RoadConfig};
use road_social_mac::datagen::social::{generate_social, PlantedGroup, SocialConfig};
use road_social_mac::geom::PrefRegion;

fn main() {
    // A school-sized social network: 400 players/students, one tight-knit
    // varsity squad (the planted group) plus loose acquaintances.
    let social = generate_social(&SocialConfig {
        n: 400,
        attach_m: 3,
        planted: vec![PlantedGroup {
            size: 30,
            degree: 10,
        }],
        seed: 42,
    });
    let road = generate_road(&RoadConfig::with_size(400, 42));
    // points / rebounds / assists per player
    let attrs = generate_attrs(400, 3, AttrDistribution::Independent, 30.0, 42);
    let locations = assign_locations(&road, 400, &social.groups, &LocationConfig::default());
    let rsn = RoadSocialNetwork::new(social.graph, road, locations, attrs).unwrap();

    // One prepared engine serves every what-if roster query the coach tries.
    let engine = MacEngine::build(rsn);
    let mut session = engine.session();

    // The coach builds the team around two key players from the varsity squad,
    // cares mostly about offense (points weight 0.4-0.6), and limits the
    // search to players living close to the school (t = 25).
    let anchors = vec![social.groups[0][0], social.groups[0][1]];
    let region = PrefRegion::from_ranges(&[(0.4, 0.6), (0.15, 0.3)]).unwrap();
    let query = MacQuery::new(anchors.clone(), 6, 25.0, region).with_top_j(3);

    let result = session.execute_top_j(&query).expect("valid query");
    println!(
        "Rebuilding the team around players {:?} (k = 6, t = 25):",
        anchors
    );
    if result.is_empty() {
        println!("no team satisfies the constraints — relax k or t");
        return;
    }
    for (i, cell) in result.cells.iter().enumerate() {
        println!(
            "preference sub-region {i} (sample weights {:?}):",
            cell.sample_weight
        );
        for (rank, c) in cell.communities.iter().enumerate() {
            println!(
                "  top-{} roster ({} players): {:?}",
                rank + 1,
                c.len(),
                c.vertices
            );
        }
    }
}
